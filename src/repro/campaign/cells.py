"""The campaign work-list: ``(benchmark, explorer, seed)`` cells.

A campaign is a flat, deterministic list of cells.  Each cell is fully
described by three picklable scalars, so it can be shipped to a worker
process, keyed into a checkpoint store, and re-executed bit-for-bit:

* ``bench_id``  — suite benchmark id (``repro.suite.REGISTRY``);
* ``explorer``  — a :data:`~repro.explore.controller.STANDARD_EXPLORERS`
  name;
* ``seed``      — RNG seed, meaningful only for the randomized
  strategies in :data:`~repro.explore.controller.SEEDED_EXPLORERS`.

Deterministic strategies always get exactly one cell (``seed=0``) no
matter how many seeds the campaign requests — re-running DFS with a
different seed would be duplicate work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from ..explore.controller import SEEDED_EXPLORERS, require_explorer


@dataclass(frozen=True, order=True)
class CampaignCell:
    """One unit of campaign work."""

    bench_id: int
    explorer: str
    seed: int = 0

    @property
    def key(self) -> str:
        """Stable string key used by the checkpoint store."""
        return f"{self.bench_id}:{self.explorer}:{self.seed}"

    @staticmethod
    def from_key(key: str) -> "CampaignCell":
        bench_id, explorer, seed = key.rsplit(":", 2)
        return CampaignCell(int(bench_id), explorer, int(seed))

    @property
    def label(self) -> str:
        return (f"{self.explorer}#{self.seed}" if self.seed else
                self.explorer)


def build_cells(
    bench_ids: Iterable[int],
    explorer_names: Sequence[str],
    seeds: int = 1,
) -> List[CampaignCell]:
    """Expand the ``bench × explorer × seed`` matrix into a work-list.

    Explorer names are validated eagerly (a typo should fail before the
    pool spins up, not inside a worker).  Duplicates collapse; order is
    deterministic: benchmarks in the given order, explorers in the given
    order, seeds ascending.
    """
    if seeds < 1:
        raise ValueError(f"seeds must be >= 1, got {seeds}")
    for name in explorer_names:
        require_explorer(name)
    cells: Dict[CampaignCell, None] = {}
    for bench_id in bench_ids:
        for name in explorer_names:
            fan_out = seeds if name in SEEDED_EXPLORERS else 1
            for seed in range(fan_out):
                cells.setdefault(CampaignCell(bench_id, name, seed))
    return list(cells)
