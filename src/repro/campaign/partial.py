"""Intra-cell partial checkpoints: one file per half-explored cell.

A *partial* is the serialized in-progress state of one exploration —
an explorer ``snapshot()`` (frontier of remaining work items,
statistics with fingerprint sets, strategy state such as HBR caches) —
stamped with the cell key and the :class:`ExplorationLimits` it was
produced under.  Workers write partials periodically (and when a cell
stops on a budget limit); ``--resume`` then continues the cell from
its frontier instead of schedule zero.

Partials live as individual files under ``<checkpoint>.partials/`` —
one atomic ``os.replace`` per write — so pool workers in separate
processes can checkpoint concurrently without coordinating over the
main JSON store.

Limits compatibility: a partial resumes under the limits it was
written with, or under *laxer* ones (a larger ``max_schedules``, a
larger/removed ``max_seconds``) — the restored schedule and elapsed
counts are charged against the new budgets.  Tighter limits (or a
changed per-schedule event bound, which alters exploration itself)
discard the partial.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..explore.base import ExplorationLimits
from ..ioutil import atomic_write_json

PARTIAL_VERSION = 1


def limits_to_dict(limits: ExplorationLimits) -> Dict[str, Any]:
    return {
        "max_schedules": limits.max_schedules,
        "max_seconds": limits.max_seconds,
        "max_events_per_schedule": limits.max_events_per_schedule,
    }


def limits_resumable_under(stored: Dict[str, Any],
                           current: ExplorationLimits) -> bool:
    """May a partial written under ``stored`` continue under
    ``current``?  Equal or laxer budgets only; the per-schedule event
    bound must match exactly (it changes which schedules exist)."""
    if stored.get("max_events_per_schedule") != \
            current.max_events_per_schedule:
        return False
    stored_schedules = stored.get("max_schedules")
    if not isinstance(stored_schedules, int) or \
            current.max_schedules < stored_schedules:
        return False
    stored_seconds = stored.get("max_seconds")
    if current.max_seconds is not None and (
            stored_seconds is None or current.max_seconds < stored_seconds):
        return False
    return True


def partial_path(base: Union[str, Path], key: str) -> Path:
    """File for one cell's partial under the ``.partials`` sibling of
    checkpoint ``base``.  Cell keys contain only ``[\\w.@/-]`` and
    ``:``; the separators are mapped to filename-safe characters."""
    safe = key.replace(":", "+").replace("/", "_")
    return Path(f"{base}.partials") / f"{safe}.json"


def write_partial(
    path: Union[str, Path],
    key: str,
    limits: ExplorationLimits,
    snapshot: Dict[str, Any],
) -> None:
    """Atomically persist one partial snapshot (crash-safe: a killed
    writer leaves the previous file intact, never a torn one)."""
    payload = {
        "version": PARTIAL_VERSION,
        "key": key,
        "limits": limits_to_dict(limits),
        "snapshot": snapshot,
    }
    atomic_write_json(path, payload, indent=0)


def read_partial(
    path: Union[str, Path],
    key: str,
    limits: ExplorationLimits,
) -> Optional[Dict[str, Any]]:
    """Load the snapshot for ``key`` if present, well-formed and
    resumable under ``limits``; None otherwise (never raises — a
    corrupt partial just means a from-scratch run)."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("version") != PARTIAL_VERSION:
        return None
    if payload.get("key") != key:
        return None
    stored_limits = payload.get("limits")
    if not isinstance(stored_limits, dict) or not \
            limits_resumable_under(stored_limits, limits):
        return None
    snapshot = payload.get("snapshot")
    return snapshot if isinstance(snapshot, dict) else None


def clear_partial(path: Union[str, Path]) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass
