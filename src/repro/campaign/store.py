"""Resumable JSON checkpoint store for campaign results.

One JSON document maps cell keys to serialized :class:`CellResult`
payloads — completed cells under ``"cells"``, completed shards of
split cells under ``"shards"``.  The store is flushed with an atomic
``os.replace`` as cells complete (rate-limited — see
:attr:`ResultStore.flush_interval` — with a guaranteed final flush
from the campaign driver), so an interrupted campaign (Ctrl-C,
OOM-killed worker host, pre-empted CI runner) resumes from (almost)
the last completed cell instead of restarting the matrix.

Checkpoints are stamped with the :class:`ExplorationLimits` they were
produced under; resuming with different limits discards the checkpoint
rather than silently mixing statistics computed under different
budgets.

Failed cells are *not* checkpointed: a resume retries them, which is
what you want after fixing the crash or raising the budget.

Beyond whole-cell results, the store manages the *partial* files of
half-explored cells (see :mod:`repro.campaign.partial`): workers
checkpoint in-flight explorer snapshots under ``<path>.partials/``,
and :meth:`load_partial` hands them back on resume so a cell
continues from its frontier instead of schedule zero.  Partials carry
their own limits stamp with laxer-budget compatibility, so raising
``--limit`` keeps the half-explored state even though the completed
cells (computed under the old budget) are discarded.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..explore.base import ExplorationLimits
from ..ioutil import atomic_write_json
from .cells import CampaignCell
from .partial import (
    clear_partial,
    limits_to_dict,
    partial_path,
    read_partial,
)
from .worker import CellResult

STORE_VERSION = 3

__all__ = ["STORE_VERSION", "ResultStore", "limits_to_dict"]


class ResultStore:
    """Append-mostly checkpoint file keyed by cell."""

    #: minimum seconds between on-disk flushes; bounds checkpoint I/O to
    #: O(campaign duration) instead of O(cells^2) while capping the work
    #: lost to a crash at one interval
    flush_interval: float = 1.0

    def __init__(
        self,
        path: Union[str, Path],
        limits: Optional[ExplorationLimits] = None,
    ) -> None:
        self.path = Path(path)
        self.limits = limits
        self.discarded_mismatch = False
        self.loaded = False
        self._results: Dict[str, CellResult] = {}
        self._shards: Dict[str, CellResult] = {}
        self._dirty = False
        self._last_flush = 0.0

    def __len__(self) -> int:
        return len(self._results)

    def load(self) -> int:
        """Read any existing checkpoint; returns the number of completed
        cells recovered.  A missing, unreadable or malformed file is an
        empty store (a fresh campaign), not an error; so is a checkpoint
        written under different limits (``discarded_mismatch`` is
        set)."""
        self._results = {}
        self._shards = {}
        self.discarded_mismatch = False
        self.loaded = True
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return 0
        if not isinstance(payload, dict):
            return 0
        if payload.get("version") != STORE_VERSION:
            return 0
        if (self.limits is not None
                and payload.get("limits") != limits_to_dict(self.limits)):
            self.discarded_mismatch = True
            return 0
        try:
            for key, entry in payload.get("cells", {}).items():
                result = CellResult.from_dict(entry)
                result.cached = True
                self._results[key] = result
            for key, entry in payload.get("shards", {}).items():
                result = CellResult.from_dict(entry)
                result.cached = True
                self._shards[key] = result
        except (AttributeError, KeyError, TypeError, ValueError):
            # a hand-edited or foreign JSON file: start fresh rather
            # than abort the campaign
            self._results = {}
            self._shards = {}
            return 0
        return len(self._results)

    def get(self, cell: CampaignCell) -> Optional[CellResult]:
        return self._results.get(cell.key)

    def add(self, result: CellResult) -> None:
        """Record a completed cell (failures are retried on resume, so
        they are accepted in memory but skipped by :meth:`flush`).
        Flushes to disk at most every :attr:`flush_interval` seconds;
        call :meth:`flush` for a hard write."""
        self._results[result.cell.key] = result
        self._dirty = True
        if time.monotonic() - self._last_flush >= self.flush_interval:
            self.flush()

    # -- shards of split cells ---------------------------------------------
    def get_shard(self, key: str) -> Optional[CellResult]:
        return self._shards.get(key)

    def add_shard(self, key: str, result: CellResult) -> None:
        self._shards[key] = result
        self._dirty = True
        if time.monotonic() - self._last_flush >= self.flush_interval:
            self.flush()

    # -- partial (half-explored) cells -------------------------------------
    def partial_path(self, key: str) -> Path:
        """Where the in-flight snapshot for ``key`` (a cell or shard
        key) is checkpointed; handed to workers so they can write it
        without sharing this store object across processes."""
        return partial_path(self.path, key)

    def load_partial(self, key: str) -> Optional[Dict[str, Any]]:
        """The resumable snapshot for ``key``, if one exists and its
        limits stamp is compatible with (equal to or stricter than)
        this store's limits."""
        if self.limits is None:
            return None
        return read_partial(self.partial_path(key), key, self.limits)

    def clear_partial(self, key: str) -> None:
        clear_partial(self.partial_path(key))

    def flush(self) -> None:
        if not self._dirty:
            return
        payload: Dict[str, Any] = {
            "version": STORE_VERSION,
            "cells": {
                key: r.to_dict()
                for key, r in sorted(self._results.items())
                if r.ok
            },
        }
        if self._shards:
            payload["shards"] = {
                key: r.to_dict()
                for key, r in sorted(self._shards.items())
                if r.ok
            }
        if self.limits is not None:
            payload["limits"] = limits_to_dict(self.limits)
        atomic_write_json(self.path, payload)
        self._dirty = False
        self._last_flush = time.monotonic()
