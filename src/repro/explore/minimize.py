"""Error-schedule minimisation (delta debugging for interleavings).

Explorers report a full thread-choice list for every property
violation; for debugging, shorter and less-preempted schedules are far
easier to read.  :func:`minimize_schedule` greedily shrinks a failing
schedule while preserving the error kind:

1. **chunk removal** — ddmin-style: drop contiguous chunks of choices
   (halving chunk sizes), replaying the remainder with a first-enabled
   fallback;
2. **preemption smoothing** — replace each context switch with a run of
   the previously scheduled thread where possible.

Replays that diverge (the truncated schedule is infeasible) simply
don't count as improvements — feasibility is re-checked by execution,
never assumed, so the result is always a real failing schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import SchedulerError
from ..runtime.executor import Executor
from ..runtime.program import Program
from ..runtime.schedule import ReplayScheduler
from ..runtime.trace import TraceResult


@dataclass
class MinimizationResult:
    """Outcome of shrinking one failing schedule."""

    schedule: List[int]
    error_kind: str
    replays: int
    original_length: int

    @property
    def reduction_pct(self) -> float:
        if self.original_length == 0:
            return 0.0
        saved = self.original_length - len(self.schedule)
        return 100.0 * saved / self.original_length


def _run_prefix(program: Program, prefix: Sequence[int],
                max_events: int) -> Optional[TraceResult]:
    """Replay ``prefix`` then continue first-enabled; None on divergence."""
    ex = Executor(program, max_events=max_events)
    sched = ReplayScheduler(prefix)
    try:
        while not ex.is_done():
            ex.step(sched.choose(ex))
        return ex.finish()
    except SchedulerError:
        return None
    finally:
        # candidate prefixes routinely diverge or end in an error with
        # other guests still suspended; close them explicitly so their
        # GC-time teardown cannot spray "ignored GeneratorExit" noise
        ex.close()


def _error_kind(result: Optional[TraceResult]) -> Optional[str]:
    if result is None or result.error is None:
        return None
    return type(result.error).__name__


def _preemptions(schedule: Sequence[int]) -> int:
    return sum(1 for a, b in zip(schedule, schedule[1:]) if a != b)


def minimize_schedule(
    program: Program,
    schedule: Sequence[int],
    max_replays: int = 2_000,
    max_events: int = 20_000,
) -> MinimizationResult:
    """Shrink ``schedule`` while keeping the same error kind.

    The returned schedule (a) reproduces an error of the same exception
    class, (b) is never longer than the input, and (c) usually has far
    fewer explicit choices and preemptions.
    """
    current = list(schedule)
    baseline = _run_prefix(program, current, max_events)
    kind = _error_kind(baseline)
    if kind is None:
        raise ValueError("the given schedule does not produce an error")
    replays = 1

    def still_fails(candidate: Sequence[int]) -> bool:
        nonlocal replays
        if replays >= max_replays:
            return False
        replays += 1
        return _error_kind(_run_prefix(program, candidate, max_events)) == kind

    # Phase 0: the error may need no steering at all.
    if still_fails([]):
        return MinimizationResult([], kind, replays, len(schedule))

    # Phase 1: ddmin-style chunk removal with shrinking chunk size.
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        improved = True
        while improved and replays < max_replays:
            improved = False
            i = 0
            while i < len(current):
                candidate = current[:i] + current[i + chunk:]
                if still_fails(candidate):
                    current = candidate
                    improved = True
                else:
                    i += chunk
        chunk //= 2

    # Phase 2: smooth preemptions — try extending each thread's run by
    # replacing the first choice after a switch with the previous thread.
    improved = True
    while improved and replays < max_replays:
        improved = False
        for i in range(1, len(current)):
            if current[i] != current[i - 1]:
                candidate = list(current)
                candidate[i] = current[i - 1]
                if _preemptions(candidate) < _preemptions(current) and \
                        still_fails(candidate):
                    current = candidate
                    improved = True
                    break

    return MinimizationResult(current, kind, replays, len(schedule))
