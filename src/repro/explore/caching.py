"""(Lazy) HBR caching — Musuvathi & Qadeer, MSR-TR-2007-12, and the
lazy variant contributed by the paper.

Exploration is a depth-first enumeration of schedules, but after every
executed event the fingerprint of the prefix's happens-before relation
is looked up in a global cache:

* **regular HBR caching**: if the same HBR was produced by an earlier
  prefix, Theorem 2.1 guarantees the state is identical, so the current
  branch is redundant and pruned;
* **lazy HBR caching** (``lazy=True``): the *lazy* HBR fingerprint is
  used instead.  Both prefixes were actually executed, hence feasible,
  so Theorem 2.2 applies and the prune is equally sound — but because
  many distinct HBRs share one lazy HBR, pruning triggers much earlier
  in lock-heavy programs.

Within the same schedule budget, the lazy variant therefore reaches
*more distinct terminal states* — exactly the comparison of the paper's
Figure 3.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.cache import FingerprintCache
from .base import Explorer


class _Frame:
    __slots__ = ("enabled", "idx")

    def __init__(self, enabled: List[int]) -> None:
        self.enabled = enabled
        self.idx = 0

    @property
    def chosen(self) -> int:
        return self.enabled[self.idx]


class HBRCachingExplorer(Explorer):
    """DFS with prefix-HBR pruning; ``lazy`` selects the relation."""

    name = "hbr-caching"

    def __init__(
        self,
        program,
        limits=None,
        lazy: bool = False,
        cache_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(program, limits)
        self.lazy = lazy
        if lazy:
            self.stats.explorer_name = self.name = "lazy-hbr-caching"
        self.cache = FingerprintCache(cache_capacity)

    def _prefix_fp(self, ex) -> int:
        return ex.engine.lazy_fingerprint() if self.lazy else ex.engine.hbr_fingerprint()

    def _explore(self) -> None:
        path: List[_Frame] = []
        first = True
        while first or path:
            first = False
            if self._budget_exceeded():
                return
            self._schedule_started()
            ex = self._new_executor()
            ex.replay_prefix([frame.chosen for frame in path])
            pruned = False
            while not ex.is_done():
                frame = _Frame(ex.enabled())
                path.append(frame)
                ex.step(frame.chosen)
                if not self.cache.insert(self._prefix_fp(ex)):
                    pruned = True
                    break
            if pruned:
                self.stats.num_pruned += 1
                self.stats.num_events += ex.num_events
            else:
                result = ex.finish()
                self.stats.num_events += result.num_events
                self._record_terminal(result)
            while path and path[-1].idx + 1 >= len(path[-1].enabled):
                path.pop()
            if path:
                path[-1].idx += 1
            else:
                self.stats.exhausted = not self.stats.limit_hit
                return

    def run(self):
        stats = super().run()
        stats.extra["cache_size"] = len(self.cache)
        stats.extra["cache_hits"] = self.cache.hits
        return stats
