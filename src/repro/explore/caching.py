"""(Lazy) HBR caching — Musuvathi & Qadeer, MSR-TR-2007-12, and the
lazy variant contributed by the paper.

Exploration is a depth-first enumeration of schedules, but after every
executed event the fingerprint of the prefix's happens-before relation
is looked up in a global cache:

* **regular HBR caching**: if the same HBR was produced by an earlier
  prefix, Theorem 2.1 guarantees the state is identical, so the current
  branch is redundant and pruned;
* **lazy HBR caching** (``lazy=True``): the *lazy* HBR fingerprint is
  used instead.  Both prefixes were actually executed, hence feasible,
  so Theorem 2.2 applies and the prune is equally sound — but because
  many distinct HBRs share one lazy HBR, pruning triggers much earlier
  in lock-heavy programs.

Within the same schedule budget, the lazy variant therefore reaches
*more distinct terminal states* — exactly the comparison of the paper's
Figure 3.

On the unified kernel this is the DFS strategy plus an ``on_step``
pruning hook.  The fingerprint cache is *global strategy state*, not
part of any work item: a prefix reached by replay was fingerprinted
when its steps were first executed, so replays skip the cache exactly
as the pre-kernel implementation did.  Checkpoints serialize the cache
contents (so a resumed run prunes identically); split shards each
start from the seed run's cache and prune independently — sound, since
HBR pruning only ever removes branches whose states are reached from
an equivalent retained prefix *within the same shard*.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.cache import FingerprintCache
from .base import ExplorationStats
from .frontier import Annotation, Frontier
from .kernel import Expansion, KernelExplorer, Strategy

_EMPTY: Annotation = {}


class HBRCachingStrategy(Strategy):
    """DFS with prefix-HBR pruning; ``lazy`` selects the relation."""

    def __init__(self, lazy: bool = False,
                 cache_capacity: Optional[int] = None) -> None:
        self.lazy = lazy
        self.name = "lazy-hbr-caching" if lazy else "hbr-caching"
        self.cache = FingerprintCache(cache_capacity)
        #: fingerprints freshly inserted by the in-flight schedule —
        #: rolled back if the kernel abandons it mid-way
        self._schedule_fps: List[int] = []

    def expand(self, enabled: List[int], ann: Annotation) -> Expansion:
        return Expansion(
            chosen=enabled[0],
            ann_after=_EMPTY,
            alternatives=[(tid, _EMPTY) for tid in enabled[1:]],
        )

    def on_schedule_start(self, item) -> None:
        self._schedule_fps = []

    def on_step(self, ex) -> bool:
        fp = (ex.engine.lazy_fingerprint() if self.lazy
              else ex.engine.hbr_fingerprint())
        if self.cache.insert(fp):
            self._schedule_fps.append(fp)
            return False
        return True

    def on_schedule_abort(self) -> None:
        # the abandoned schedule is re-executed on resume; without the
        # rollback it would hit its own stale insertions and prune its
        # entire subtree
        for fp in self._schedule_fps:
            self.cache.unrecord(fp)
        self._schedule_fps = []

    def finalize(self, stats: ExplorationStats,
                 frontier: Frontier) -> None:
        stats.extra["cache_size"] = len(self.cache)
        stats.extra["cache_hits"] = self.cache.hits

    def state_to_dict(self) -> Dict[str, Any]:
        return self.cache.to_dict()

    def state_from_dict(self, payload: Dict[str, Any]) -> None:
        if payload:
            self.cache = FingerprintCache.from_dict(payload)


class HBRCachingExplorer(KernelExplorer):
    """DFS with prefix-HBR pruning; ``lazy`` selects the relation."""

    name = "hbr-caching"

    def __init__(
        self,
        program,
        limits=None,
        lazy: bool = False,
        cache_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(
            program, limits,
            strategy=HBRCachingStrategy(lazy, cache_capacity),
        )
        self.lazy = lazy

    @property
    def cache(self) -> FingerprintCache:
        return self.strategy.cache
