"""Delay bounding (Emmi, Qadeer & Rakamarić, POPL 2011).

A *delay* skips the scheduler's default choice at one point, running
the next thread in round-robin order instead.  Exploring all schedules
with at most ``bound`` delays covers a rapidly growing portion of the
behaviour space at polynomial cost — empirically even more
bug-efficient than preemption bounding, because the budget is charged
for *deviating* rather than for switching.

With ``bound=0`` exactly one schedule (the deterministic round-robin
execution) is explored; each extra unit of budget multiplies the
explored set by at most the schedule length.

On the unified kernel the path annotation is ``(budget, last)`` — the
remaining delay budget and the last scheduled thread (which determines
the round-robin default).  The siblings of a point are the ``k``-delay
deviations for ``k = 1 .. min(budget, |enabled|-1)``, each starting its
subtree with ``budget - k``.
"""

from __future__ import annotations

from typing import List

from .frontier import Annotation
from .kernel import Expansion, KernelExplorer, Strategy


def _default_start(enabled: List[int], last_tid: int) -> int:
    """Round-robin default: the first enabled tid >= last scheduled."""
    for i, tid in enumerate(enabled):
        if tid >= last_tid:
            return i
    return 0


class DelayBoundedStrategy(Strategy):
    """DFS over schedules with at most ``bound`` delays from the
    deterministic round-robin baseline."""

    def __init__(self, bound: int = 1) -> None:
        if bound < 0:
            raise ValueError("delay bound must be >= 0")
        self.bound = bound
        self.name = f"delay-bounded({bound})"

    def initial_annotation(self) -> Annotation:
        return {"budget": self.bound, "last": 0}

    def expand(self, enabled: List[int], ann: Annotation) -> Expansion:
        budget = ann["budget"]
        start = _default_start(enabled, ann["last"])
        n = len(enabled)
        chosen = enabled[start % n]
        max_delays = min(budget, n - 1)
        return Expansion(
            chosen=chosen,
            ann_after={"budget": budget, "last": chosen},
            alternatives=[
                (enabled[(start + k) % n],
                 {"budget": budget - k, "last": enabled[(start + k) % n]})
                for k in range(1, max_delays + 1)
            ],
        )


class DelayBoundedExplorer(KernelExplorer):
    """DFS over schedules with at most ``bound`` delays from the
    deterministic round-robin baseline."""

    name = "delay-bounded"

    def __init__(self, program, limits=None, bound: int = 1) -> None:
        super().__init__(program, limits,
                         strategy=DelayBoundedStrategy(bound))
        self.bound = bound
