"""Delay bounding (Emmi, Qadeer & Rakamarić, POPL 2011).

A *delay* skips the scheduler's default choice at one point, running
the next thread in round-robin order instead.  Exploring all schedules
with at most ``bound`` delays covers a rapidly growing portion of the
behaviour space at polynomial cost — empirically even more
bug-efficient than preemption bounding, because the budget is charged
for *deviating* rather than for switching.

With ``bound=0`` exactly one schedule (the deterministic round-robin
execution) is explored; each extra unit of budget multiplies the
explored set by at most the schedule length.
"""

from __future__ import annotations

from typing import List

from .base import Explorer


class _Frame:
    """One scheduling point: how many delays were applied here."""

    __slots__ = ("enabled", "delays", "budget_left", "start")

    def __init__(self, enabled: List[int], budget_left: int, start: int) -> None:
        self.enabled = enabled
        self.delays = 0
        self.budget_left = budget_left
        self.start = start  # index of the default (round-robin) choice

    @property
    def chosen(self) -> int:
        return self.enabled[(self.start + self.delays) % len(self.enabled)]

    def can_delay_more(self) -> bool:
        return (
            self.delays < self.budget_left
            and self.delays + 1 < len(self.enabled)
        )


class DelayBoundedExplorer(Explorer):
    """DFS over schedules with at most ``bound`` delays from the
    deterministic round-robin baseline."""

    name = "delay-bounded"

    def __init__(self, program, limits=None, bound: int = 1) -> None:
        super().__init__(program, limits)
        if bound < 0:
            raise ValueError("delay bound must be >= 0")
        self.bound = bound
        self.stats.explorer_name = self.name = f"delay-bounded({bound})"

    def _default_start(self, enabled: List[int], last_tid: int) -> int:
        """Round-robin default: the first enabled tid >= last scheduled."""
        for i, tid in enumerate(enabled):
            if tid >= last_tid:
                return i
        return 0

    def _explore(self) -> None:
        path: List[_Frame] = []
        first = True
        while first or path:
            first = False
            if self._budget_exceeded():
                return
            self._schedule_started()
            ex = self._new_executor()
            budget = self.bound
            last_tid = 0
            ex.replay_prefix([frame.chosen for frame in path])
            if path:
                budget = path[-1].budget_left - path[-1].delays
                last_tid = path[-1].chosen
            while not ex.is_done():
                enabled = ex.enabled()
                start = self._default_start(enabled, last_tid)
                frame = _Frame(enabled, budget, start)
                path.append(frame)
                last_tid = frame.chosen
                ex.step(frame.chosen)
            result = ex.finish()
            self.stats.num_events += result.num_events
            self._record_terminal(result)
            # backtrack: deepest frame that can spend one more delay
            while path and not path[-1].can_delay_more():
                path.pop()
            if path:
                path[-1].delays += 1
            else:
                self.stats.exhausted = not self.stats.limit_hit
                return
