"""The prefix-keyed snapshot tree: cached executor states at branch
points of one exploration.

Stateless-replay exploration re-executes every schedule from step zero,
even though depth-first neighbours share almost their whole prefix.  The
:class:`SnapshotTree` turns that redundancy into cache hits: the kernel
(and DPOR's bespoke loop) snapshot the executor at scheduling points
that root unexplored siblings, keyed by the schedule prefix reaching
them; when a work item is popped, ``lookup`` finds the deepest cached
ancestor of its prefix and the explorer resumes from there, replaying
only the (usually one-step) remainder.

Keys are pure schedule prefixes — *not* strategy annotations — because
the guest program is deterministic: the executor state at a prefix is a
function of the prefix alone.  One tree therefore serves every strategy
root (iterative bounding's per-bound passes share each other's
snapshots) and composes with DPOR's dynamically grown stack, whose
serialized form is also a schedule prefix per node.

Memory is bounded: entries are LRU-evicted once the configured byte
budget (estimated — see ``ExecutorSnapshot.approx_bytes``) is exceeded.
Eviction only costs performance, never correctness: a miss falls back
to plain ``replay_prefix`` from scratch, which is byte-identical by the
snapshot equivalence guarantee.  The tree is in-memory only — explorer
``snapshot()/restore()`` checkpoints do not serialize it; a resumed run
simply starts with a cold cache.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..runtime.snapshot import ExecutorSnapshot

Prefix = Tuple[int, ...]


class SnapshotTree:
    """LRU cache of :class:`ExecutorSnapshot` keyed by schedule prefix."""

    __slots__ = (
        "budget_bytes", "bytes_used", "bytes_high_water",
        "hits", "misses", "inserts", "evictions", "rejected",
        "resumed_events", "replayed_events",
        "_entries", "_depth_counts", "_max_depth",
    )

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes < 0:
            raise ValueError(
                f"snapshot budget must be >= 0, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self.bytes_used = 0
        self.bytes_high_water = 0
        self.hits = 0
        self.misses = 0
        self.inserts = 0
        self.evictions = 0
        self.rejected = 0            #: inserts refused (snapshot > budget)
        #: prefix events *not* re-executed thanks to snapshot resumes,
        #: vs prefix events replayed the hard way (both maintained by
        #: the explorers; newly executed events are neither)
        self.resumed_events = 0
        self.replayed_events = 0
        self._entries: "OrderedDict[Prefix, ExecutorSnapshot]" = OrderedDict()
        # live key count per depth + current deepest key: bounds the
        # lookup probe range, so a miss against a shallow cache costs
        # O(cached depth) slices instead of O(len(prefix)^2) hashing
        self._depth_counts: Dict[int, int] = {}
        self._max_depth = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def lookup(self, prefix: Prefix) -> Optional[Tuple[int, ExecutorSnapshot]]:
        """Deepest cached ancestor of ``prefix`` (the prefix itself
        included), as ``(depth, snapshot)``; None on a complete miss.
        Probes deepest-first — in the depth-first common case the
        parent branch point sits at ``len(prefix) - 1`` and the first
        or second probe hits."""
        entries = self._entries
        if entries:
            for depth in range(min(len(prefix), self._max_depth), 0, -1):
                key = prefix[:depth]
                if key in entries:
                    entries.move_to_end(key)
                    self.hits += 1
                    return depth, entries[key]
        self.misses += 1
        return None

    def wants(self, prefix: Prefix) -> bool:
        """Would an insert at ``prefix`` store anything new?  (Checked
        before paying the snapshot cost.)  Depth-0 snapshots are never
        wanted: restoring one costs more than a fresh executor."""
        return bool(prefix) and prefix not in self._entries

    def insert(self, prefix: Prefix, snapshot: ExecutorSnapshot) -> bool:
        """Cache ``snapshot`` under ``prefix``, LRU-evicting to stay
        within the byte budget.  Returns False when the snapshot alone
        exceeds the whole budget (it is not stored)."""
        size = snapshot.approx_bytes
        if size > self.budget_bytes:
            self.rejected += 1
            return False
        entries = self._entries
        old = entries.pop(prefix, None)
        if old is not None:  # pragma: no cover - wants() guards this
            self.bytes_used -= old.approx_bytes
            self._drop_depth(len(prefix))
        while entries and self.bytes_used + size > self.budget_bytes:
            evicted_key, evicted = entries.popitem(last=False)
            self.bytes_used -= evicted.approx_bytes
            self.evictions += 1
            self._drop_depth(len(evicted_key))
        entries[prefix] = snapshot
        self.bytes_used += size
        self.inserts += 1
        depth = len(prefix)
        counts = self._depth_counts
        counts[depth] = counts.get(depth, 0) + 1
        if depth > self._max_depth:
            self._max_depth = depth
        if self.bytes_used > self.bytes_high_water:
            self.bytes_high_water = self.bytes_used
        return True

    def _drop_depth(self, depth: int) -> None:
        counts = self._depth_counts
        counts[depth] -= 1
        if not counts[depth]:
            del counts[depth]
            if depth == self._max_depth:
                self._max_depth = max(counts, default=0)

    def clear(self) -> None:
        self._entries.clear()
        self.bytes_used = 0
        self._depth_counts = {}
        self._max_depth = 0

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counters for perf reports (``bench --scenario prefix``)."""
        probes = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "bytes_used": self.bytes_used,
            "bytes_high_water": self.bytes_high_water,
            "budget_bytes": self.budget_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": (self.hits / probes) if probes else 0.0,
            "inserts": self.inserts,
            "evictions": self.evictions,
            "rejected": self.rejected,
            "resumed_events": self.resumed_events,
            "replayed_events": self.replayed_events,
        }
