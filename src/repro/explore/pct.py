"""PCT — probabilistic concurrency testing (Burckhardt et al., ASPLOS
2010), the randomized scheduler with a bug-depth guarantee.

Each run draws distinct random priorities for the threads and ``d-1``
priority-change points (event indices).  At every step the enabled
thread with the highest current priority runs; when the global event
count crosses a change point, the running thread's priority drops below
all others.  For a program with ``n`` threads and ``k`` events, a bug
of depth ``d`` is found with probability >= 1/(n * k^(d-1)) per run.
"""

from __future__ import annotations

import random
from typing import Dict

from .base import Explorer


class PCTExplorer(Explorer):
    """Independent PCT runs (depth ``d``, seeded)."""

    name = "pct"

    def __init__(
        self,
        program,
        limits=None,
        depth: int = 3,
        expected_events: int = 64,
        seed: int = 0,
    ) -> None:
        super().__init__(program, limits)
        if depth < 1:
            raise ValueError("PCT depth must be >= 1")
        self.depth = depth
        self.expected_events = expected_events
        self.seed = seed

    def _explore(self) -> None:
        rng = random.Random(self.seed)
        while not self._budget_exceeded():
            self._schedule_started()
            self._one_run(rng)

    def _one_run(self, rng: random.Random) -> None:
        ex = self._new_executor()
        # base priorities: uniform random in (0, 1), i.e. a uniformly
        # random priority ordering per run; ties have probability zero
        priorities: Dict[int, float] = {}
        change_points = sorted(
            rng.randrange(1, max(2, self.expected_events))
            for _ in range(self.depth - 1)
        )
        low = 0.0  # change points push priorities below every base one
        steps = 0
        # hot loop: bound methods hoisted, choices trusted
        is_done = ex.is_done
        enabled_of = ex.enabled
        step = ex.step
        prio_of = priorities.__getitem__
        while not is_done():
            enabled = enabled_of()
            for tid in enabled:
                if tid not in priorities:
                    priorities[tid] = rng.random()
            chosen = max(enabled, key=prio_of)
            step(chosen, True)
            steps += 1
            while change_points and steps >= change_points[0]:
                change_points.pop(0)
                low -= 1.0
                priorities[chosen] = low
        result = ex.finish()
        self.stats.num_events += result.num_events
        self._record_terminal(result)
