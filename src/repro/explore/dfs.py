"""Exhaustive depth-first enumeration of all schedules.

No reduction at all: every interleaving of visible operations is
executed once.  Exponential, but it is the ground truth the reduction
strategies are tested against — on small programs every other explorer
must find exactly the same set of terminal states.

Ported onto the unified exploration kernel: the strategy needs no path
annotation at all — at every scheduling point the default choice is the
first enabled thread and every other enabled thread roots a sibling
subtree.
"""

from __future__ import annotations

from typing import List

from .frontier import Annotation
from .kernel import Expansion, KernelExplorer, Strategy

_EMPTY: Annotation = {}


class DFSStrategy(Strategy):
    """Enumerate every schedule in depth-first order."""

    name = "dfs"

    def expand(self, enabled: List[int], ann: Annotation) -> Expansion:
        return Expansion(
            chosen=enabled[0],
            ann_after=_EMPTY,
            alternatives=[(tid, _EMPTY) for tid in enabled[1:]],
        )


class DFSExplorer(KernelExplorer):
    """Enumerates every schedule by stateless depth-first search."""

    name = "dfs"

    def __init__(self, program, limits=None) -> None:
        super().__init__(program, limits, strategy=DFSStrategy())
