"""Exhaustive depth-first enumeration of all schedules.

No reduction at all: every interleaving of visible operations is
executed once.  Exponential, but it is the ground truth the reduction
strategies are tested against — on small programs every other explorer
must find exactly the same set of terminal states.
"""

from __future__ import annotations

from typing import List

from .base import Explorer


class _Frame:
    """One scheduling decision on the DFS path."""

    __slots__ = ("enabled", "idx")

    def __init__(self, enabled: List[int]) -> None:
        self.enabled = enabled
        self.idx = 0  # position in `enabled` currently being explored

    @property
    def chosen(self) -> int:
        return self.enabled[self.idx]


class DFSExplorer(Explorer):
    """Enumerates every schedule by stateless depth-first search."""

    name = "dfs"

    def _explore(self) -> None:
        path: List[_Frame] = []
        first = True
        while first or path:
            first = False
            if self._budget_exceeded():
                return
            self._schedule_started()
            ex = self._new_executor()
            ex.replay_prefix([frame.chosen for frame in path])
            while not ex.is_done():
                frame = _Frame(ex.enabled())
                path.append(frame)
                ex.step(frame.chosen)
            result = ex.finish()
            self.stats.num_events += result.num_events
            self._record_terminal(result)
            # backtrack to the deepest frame with an untried sibling
            while path and path[-1].idx + 1 >= len(path[-1].enabled):
                path.pop()
            if path:
                path[-1].idx += 1
            else:
                self.stats.exhausted = True
                return
