"""Run-matrix helpers: run several explorers over several programs and
collect comparable statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..runtime.program import Program
from .base import ExplorationLimits, ExplorationStats, Explorer
from .bounded import IterativeContextBoundingExplorer, PreemptionBoundedExplorer
from .caching import HBRCachingExplorer
from .delay import DelayBoundedExplorer
from .dfs import DFSExplorer
from .dpor import DPORExplorer
from .lazy_dpor import LazyDPORExplorer
from .pct import PCTExplorer
from .random_walk import RandomWalkExplorer

#: factory: (program, limits) -> Explorer
ExplorerFactory = Callable[[Program, ExplorationLimits], Explorer]

STANDARD_EXPLORERS: Dict[str, ExplorerFactory] = {
    "dfs": lambda prog, lim: DFSExplorer(prog, lim),
    "dpor": lambda prog, lim: DPORExplorer(prog, lim),
    "dpor-nosleep": lambda prog, lim: DPORExplorer(prog, lim, sleep_sets=False),
    "hbr-caching": lambda prog, lim: HBRCachingExplorer(prog, lim, lazy=False),
    "lazy-hbr-caching": lambda prog, lim: HBRCachingExplorer(prog, lim, lazy=True),
    "lazy-dpor": lambda prog, lim: LazyDPORExplorer(prog, lim),
    "random": lambda prog, lim: RandomWalkExplorer(prog, lim),
    "pct": lambda prog, lim: PCTExplorer(prog, lim),
    "preempt-bounded": lambda prog, lim: PreemptionBoundedExplorer(prog, lim),
    "iterative-cb": lambda prog, lim: IterativeContextBoundingExplorer(prog, lim),
    "delay-bounded": lambda prog, lim: DelayBoundedExplorer(prog, lim),
}


def matrix_report(rows: Sequence["ComparisonRow"]) -> str:
    """Markdown table comparing all explorers over all programs: one row
    per (program, explorer) with the headline counts."""
    out = [
        "| program | explorer | schedules | #HBRs | #lazy HBRs | #states "
        "| errors | status |",
        "|---|---|---:|---:|---:|---:|---:|:--|",
    ]
    for row in rows:
        for name, stats in row.by_explorer.items():
            status = "limit" if stats.limit_hit else (
                "exhausted" if stats.exhausted else "done"
            )
            out.append(
                f"| {row.program_name} | {name} | {stats.num_schedules} | "
                f"{stats.num_hbrs} | {stats.num_lazy_hbrs} | "
                f"{stats.num_states} | {len(stats.errors)} | {status} |"
            )
    return "\n".join(out)


@dataclass
class ComparisonRow:
    """Stats of all requested explorers for one program."""

    program_name: str
    by_explorer: Dict[str, ExplorationStats] = field(default_factory=dict)


def run_matrix(
    programs: Iterable[Program],
    explorer_names: Sequence[str],
    limits: Optional[ExplorationLimits] = None,
    verify: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ComparisonRow]:
    """Run each named explorer on each program.

    With ``verify`` (default), the paper's inequality chain is asserted
    for every run.
    """
    limits = limits or ExplorationLimits()
    rows: List[ComparisonRow] = []
    for program in programs:
        row = ComparisonRow(program.name)
        for name in explorer_names:
            factory = STANDARD_EXPLORERS.get(name)
            if factory is None:
                raise KeyError(
                    f"unknown explorer {name!r}; available: "
                    f"{sorted(STANDARD_EXPLORERS)}"
                )
            stats = factory(program, limits).run()
            if verify:
                stats.verify_inequality()
            row.by_explorer[name] = stats
            if progress is not None:
                progress(stats.summary())
        rows.append(row)
    return rows


def states_found(program: Program, explorer_name: str,
                 limits: Optional[ExplorationLimits] = None) -> frozenset:
    """The set of distinct terminal state hashes an explorer reaches —
    used by the soundness tests to compare against DFS ground truth."""
    limits = limits or ExplorationLimits()
    explorer = STANDARD_EXPLORERS[explorer_name](program, limits)
    explorer.run()
    return frozenset(explorer._state_hashes)
