"""Run-matrix helpers: run several explorers over several programs and
collect comparable statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..runtime.program import Program
from .base import ExplorationLimits, ExplorationStats, Explorer
from .bounded import IterativeContextBoundingExplorer, PreemptionBoundedExplorer
from .caching import HBRCachingExplorer
from .delay import DelayBoundedExplorer
from .dfs import DFSExplorer
from .dpor import DPORExplorer
from .lazy_dpor import LazyDPORExplorer
from .pct import PCTExplorer
from .random_walk import RandomWalkExplorer

#: factory: (program, limits, seed=0) -> Explorer.  Deterministic
#: strategies ignore the seed; the randomized ones (``random``, ``pct``)
#: thread it into their RNG so campaign shards with different seeds do
#: genuinely different work.
ExplorerFactory = Callable[..., Explorer]

STANDARD_EXPLORERS: Dict[str, ExplorerFactory] = {
    "dfs": lambda prog, lim, seed=0: DFSExplorer(prog, lim),
    "dpor": lambda prog, lim, seed=0: DPORExplorer(prog, lim),
    "dpor-nosleep":
        lambda prog, lim, seed=0: DPORExplorer(prog, lim, sleep_sets=False),
    "hbr-caching":
        lambda prog, lim, seed=0: HBRCachingExplorer(prog, lim, lazy=False),
    "lazy-hbr-caching":
        lambda prog, lim, seed=0: HBRCachingExplorer(prog, lim, lazy=True),
    "lazy-dpor": lambda prog, lim, seed=0: LazyDPORExplorer(prog, lim),
    "random": lambda prog, lim, seed=0: RandomWalkExplorer(prog, lim, seed=seed),
    "pct": lambda prog, lim, seed=0: PCTExplorer(prog, lim, seed=seed),
    "preempt-bounded":
        lambda prog, lim, seed=0: PreemptionBoundedExplorer(prog, lim),
    "iterative-cb":
        lambda prog, lim, seed=0: IterativeContextBoundingExplorer(prog, lim),
    "delay-bounded":
        lambda prog, lim, seed=0: DelayBoundedExplorer(prog, lim),
}

#: strategies whose outcome depends on the seed; only these fan out
#: into multiple cells when a campaign requests ``seeds > 1``.
SEEDED_EXPLORERS = frozenset({"random", "pct"})

#: kernel-based strategies whose frontier can be sharded with
#: ``Frontier.split`` (see ``repro.explore.kernel``).  DPOR variants are
#: excluded: their backtrack sets grow dynamically, so a static split of
#: the stack would drop required branches; the randomized walkers have
#: no frontier at all.
SPLITTABLE_EXPLORERS = frozenset({
    "dfs", "preempt-bounded", "iterative-cb", "delay-bounded",
    "hbr-caching", "lazy-hbr-caching",
})

#: strategies supporting intra-cell checkpoint/resume via
#: ``snapshot()``/``restore()`` — the kernel family plus the DPOR
#: variants (whose stack serializes through the work-item interface).
RESUMABLE_EXPLORERS = SPLITTABLE_EXPLORERS | frozenset({
    "dpor", "dpor-nosleep", "lazy-dpor",
})


def supports_split(name: str) -> bool:
    """Can cells of this strategy be sharded via ``Frontier.split``?"""
    return name in SPLITTABLE_EXPLORERS


def supports_snapshot(name: str) -> bool:
    """Can cells of this strategy checkpoint/resume mid-exploration?"""
    return name in RESUMABLE_EXPLORERS


def require_explorer(name: str) -> None:
    """Raise ``KeyError`` (with the canonical message) for a strategy
    name not in :data:`STANDARD_EXPLORERS`."""
    if name not in STANDARD_EXPLORERS:
        raise KeyError(
            f"unknown explorer {name!r}; available: "
            f"{sorted(STANDARD_EXPLORERS)}"
        )


def make_explorer(
    name: str,
    program: Program,
    limits: Optional[ExplorationLimits] = None,
    seed: int = 0,
    engine: Optional[str] = None,
) -> Explorer:
    """Instantiate a standard explorer by name (seed-aware).

    ``engine`` pins the clock-engine backend for every executor the
    explorer builds (``"ref"``/``"accel"``; ``None`` keeps the
    registry's auto pick — see :mod:`repro.core.engines`).
    """
    require_explorer(name)
    explorer = STANDARD_EXPLORERS[name](program, limits or
                                        ExplorationLimits(), seed)
    if engine is not None:
        explorer.engine = engine
    return explorer


def run_single(
    program: Program,
    explorer_name: str,
    limits: Optional[ExplorationLimits] = None,
    seed: int = 0,
    verify: bool = True,
    fast: Optional[bool] = None,
    resume_state: Optional[dict] = None,
    checkpoint_fn=None,
    checkpoint_interval: float = 2.0,
    control_fn=None,
    on_explorer=None,
    engine: Optional[str] = None,
) -> ExplorationStats:
    """Execute ONE (program, explorer, seed) cell.

    This is the single cell-execution function shared by every harness —
    the serial ``run_matrix``/``run_figure2``/``run_figure3`` loops and
    the parallel campaign workers all funnel through here, so serial and
    sharded runs produce bit-for-bit identical statistics (given
    deterministic budgets; a binding ``max_seconds`` wall-clock cap is
    inherently load-dependent).

    ``fast`` overrides the explorer's replay mode: ``True`` forces
    fast-replay executors, ``False`` forces the reference path, ``None``
    (default) keeps the strategy's own choice.  Both paths produce
    identical fingerprints, state hashes and schedule counts; the
    equivalence suite enforces this.

    ``engine`` pins the clock-engine backend (``"ref"``/``"accel"``)
    for the cell's executors; ``None`` keeps the registry's auto pick.
    Both backends are byte-identical in observable behaviour.

    The frontier-kernel extensions (all optional, ignored by
    strategies without snapshot support):

    * ``resume_state`` — a ``snapshot()`` payload; the explorer
      restores it and continues with the identical remaining schedule
      set, its restored schedule/elapsed counts charged against
      ``limits``;
    * ``checkpoint_fn`` — called with a fresh snapshot at most every
      ``checkpoint_interval`` seconds between schedules (the campaign
      store threads this through for intra-cell ``--resume``);
    * ``control_fn`` — installed as the explorer's between-schedules
      control callback (``Explorer.set_control``); the distributed
      worker heartbeats its lease, answers steal commands and injects
      chaos faults through it;
    * ``on_explorer`` — receives the explorer instance after the run
      (the campaign worker grabs the final snapshot of budget-limited
      cells this way).
    """
    explorer = make_explorer(explorer_name, program, limits, seed,
                             engine=engine)
    if fast is not None:
        explorer.fast_replay = fast
    if resume_state is not None and hasattr(explorer, "restore"):
        explorer.restore(resume_state)
    if checkpoint_fn is not None and hasattr(explorer, "snapshot"):
        explorer.set_checkpoint(checkpoint_fn, checkpoint_interval)
    if control_fn is not None:
        explorer.set_control(control_fn)
    stats = explorer.run()
    if verify:
        stats.verify_inequality()
    if on_explorer is not None:
        on_explorer(explorer)
    return stats


def matrix_report(rows: Sequence["ComparisonRow"]) -> str:
    """Markdown table comparing all explorers over all programs: one row
    per (program, explorer) with the headline counts."""
    out = [
        "| program | explorer | schedules | #HBRs | #lazy HBRs | #states "
        "| errors | status |",
        "|---|---|---:|---:|---:|---:|---:|:--|",
    ]
    for row in rows:
        for name, stats in row.by_explorer.items():
            status = "limit" if stats.limit_hit else (
                "exhausted" if stats.exhausted else "done"
            )
            out.append(
                f"| {row.program_name} | {name} | {stats.num_schedules} | "
                f"{stats.num_hbrs} | {stats.num_lazy_hbrs} | "
                f"{stats.num_states} | {len(stats.errors)} | {status} |"
            )
    return "\n".join(out)


@dataclass
class ComparisonRow:
    """Stats of all requested explorers for one program."""

    program_name: str
    by_explorer: Dict[str, ExplorationStats] = field(default_factory=dict)


def run_matrix(
    programs: Iterable[Program],
    explorer_names: Sequence[str],
    limits: Optional[ExplorationLimits] = None,
    verify: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> List[ComparisonRow]:
    """Run each named explorer on each program.

    With ``verify`` (default), the paper's inequality chain is asserted
    for every run.
    """
    limits = limits or ExplorationLimits()
    rows: List[ComparisonRow] = []
    for program in programs:
        row = ComparisonRow(program.name)
        for name in explorer_names:
            stats = run_single(program, name, limits, verify=verify)
            row.by_explorer[name] = stats
            if progress is not None:
                progress(stats.summary())
        rows.append(row)
    return rows


def states_found(program: Program, explorer_name: str,
                 limits: Optional[ExplorationLimits] = None) -> frozenset:
    """The set of distinct terminal state hashes an explorer reaches —
    used by the soundness tests to compare against DFS ground truth."""
    limits = limits or ExplorationLimits()
    explorer = make_explorer(explorer_name, program, limits)
    explorer.run()
    return frozenset(explorer._state_hashes)
