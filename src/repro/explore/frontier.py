"""The exploration frontier: serializable schedule-prefix work items.

Stateless search-based SCT (Verisoft/CHESS and every explorer in the
paper) cannot checkpoint *program states* — but a schedule prefix plus
a small strategy annotation fully determines the subtree of executions
rooted at it, and both are cheap, JSON-serializable scalars.  The
:class:`Frontier` makes that explicit: it is the set of unexplored
subtree roots of one exploration, maintained in LIFO order so the
kernel loop (:mod:`repro.explore.kernel`) reproduces exactly the
depth-first schedule sequence the frame-based explorers produced.

Because the frontier *is* the in-progress exploration state, it buys
two things the old implicit-stack explorers could not offer:

* ``to_dict``/``from_dict`` — checkpoint an exploration between
  schedules and resume it later, in another process, bit-for-bit;
* ``split(k)`` — partition the frontier into ``k`` disjoint,
  exhaustive sub-frontiers whose subtrees can be explored by separate
  workers and union-merged (see ``repro.campaign``).

See DESIGN.md §3 for the architecture.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, Dict, Iterable, Iterator, List, Optional, Tuple

FRONTIER_VERSION = 1

#: Strategy annotations are flat JSON-safe dicts (str keys; scalar
#: values, or lists of scalars for set-valued state such as DPOR
#: backtrack sets).  Kept flat so work items stay cheap to serialize
#: and trivially picklable for process pools.
Annotation = Dict[str, Any]

_SCALARS = (int, float, str, bool, type(None))


def _annotation_value_ok(value: Any) -> bool:
    if isinstance(value, _SCALARS):
        return True
    return isinstance(value, list) and all(
        isinstance(v, _SCALARS) for v in value
    )


class WorkItem:
    """One unexplored subtree root: a schedule prefix + strategy state.

    ``prefix`` is the sequence of thread choices leading to the branch
    point; replaying it (the only way to reconstruct the program state)
    and then extending with the owning strategy's deterministic default
    choices enumerates exactly the subtree rooted here.  ``annotation``
    carries whatever per-path state the strategy threads along
    (preemption budget, delay budget, round-robin cursor, ...).
    """

    __slots__ = ("prefix", "annotation")

    def __init__(self, prefix: Iterable[int],
                 annotation: Optional[Annotation] = None) -> None:
        self.prefix: Tuple[int, ...] = tuple(prefix)
        self.annotation: Annotation = annotation or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkItem({list(self.prefix)}, {self.annotation})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, WorkItem)
                and self.prefix == other.prefix
                and self.annotation == other.annotation)

    def __hash__(self) -> int:
        return hash((self.prefix, tuple(sorted(
            (k, tuple(v) if isinstance(v, list) else v)
            for k, v in self.annotation.items()
        ))))

    def to_dict(self) -> Dict[str, Any]:
        for key, value in self.annotation.items():
            if not isinstance(key, str) or not _annotation_value_ok(value):
                raise TypeError(
                    f"work-item annotation {key!r}={value!r} is not "
                    f"JSON-safe (str keys, scalar or scalar-list values "
                    f"required)"
                )
        return {"prefix": list(self.prefix), "annotation": self.annotation}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "WorkItem":
        return cls(
            [int(t) for t in payload["prefix"]],
            dict(payload.get("annotation") or {}),
        )


class Frontier:
    """LIFO container of :class:`WorkItem` — the unexplored subtree
    roots of one in-progress exploration.

    Invariant (maintained by the kernel, exploited by :meth:`split`):
    no item's prefix is a prefix of another item's, so the subtrees
    rooted at distinct items are disjoint and their union is exactly
    the remaining unexplored schedule set.
    """

    __slots__ = ("_items", "_holes", "_buckets", "_depth_heap")

    def __init__(self, items: Optional[Iterable[WorkItem]] = None) -> None:
        self._items: List[Optional[WorkItem]] = list(items) if items else []
        # breadth-first seeding index (see pop_shallowest): positions
        # of live items bucketed by prefix depth, plus a lazy min-heap
        # of depths.  Active only between pop_shallowest calls; any
        # other structural operation compacts the tombstoned item list
        # and drops the index.
        self._holes = 0
        self._buckets: Optional[Dict[int, Deque[int]]] = None
        self._depth_heap: Optional[List[int]] = None

    def _compact(self) -> None:
        """Leave breadth-first-seeding mode: squeeze out the tombstones
        left by pop_shallowest and drop the depth index.  O(n), paid at
        most once per seeding phase."""
        if self._buckets is None:
            return
        if self._holes:
            self._items = [it for it in self._items if it is not None]
            self._holes = 0
        self._buckets = None
        self._depth_heap = None

    # -- stack interface ---------------------------------------------------
    def push(self, item: WorkItem) -> None:
        buckets = self._buckets
        if buckets is not None:
            depth = len(item.prefix)
            bucket = buckets.get(depth)
            if bucket is None:
                buckets[depth] = bucket = deque()
                heapq.heappush(self._depth_heap, depth)
            elif not bucket:
                heapq.heappush(self._depth_heap, depth)
            bucket.append(len(self._items))
        self._items.append(item)

    def pop(self) -> WorkItem:
        self._compact()
        return self._items.pop()

    def pop_shallowest(self) -> WorkItem:
        """Remove and return the item with the shortest prefix (first
        such in stack order).  Used by seed-for-split mode: expanding
        shallow items first grows the frontier breadth-first, yielding
        many similarly-sized subtree roots to deal across shards —
        LIFO expansion would keep the frontier at O(depth) items with
        exponentially skewed subtrees.

        Amortised O(log #depths): a per-depth FIFO of item positions
        (popped slots become tombstones, squeezed out when the frontier
        leaves seeding mode) replaces the former full scan + list
        splice, which made seeding a k-shard split O(n²).
        """
        if self._buckets is None:
            # (re)build the index over the live items, in stack order
            self._buckets = buckets = {}
            for pos, item in enumerate(self._items):
                buckets.setdefault(len(item.prefix), deque()).append(pos)
            self._depth_heap = list(buckets)
            heapq.heapify(self._depth_heap)
        heap = self._depth_heap
        while heap:
            bucket = self._buckets.get(heap[0])
            if bucket:
                break
            heapq.heappop(heap)  # depth drained (or re-pushed later)
        else:
            raise IndexError("pop_shallowest from an empty frontier")
        pos = bucket.popleft()
        item = self._items[pos]
        self._items[pos] = None
        self._holes += 1
        return item

    def peek(self) -> WorkItem:
        self._compact()
        return self._items[-1]

    def __len__(self) -> int:
        return len(self._items) - self._holes

    def __bool__(self) -> bool:
        return len(self._items) > self._holes

    def __iter__(self) -> Iterator[WorkItem]:
        """Bottom-to-top; the *last* item is the next to be explored."""
        self._compact()
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Frontier):
            return False
        self._compact()
        other._compact()
        return self._items == other._items

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        self._compact()
        return {
            "version": FRONTIER_VERSION,
            "items": [item.to_dict() for item in self._items],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Frontier":
        version = payload.get("version")
        if version != FRONTIER_VERSION:
            raise ValueError(
                f"unsupported frontier payload version {version!r} "
                f"(expected {FRONTIER_VERSION})"
            )
        return cls(WorkItem.from_dict(p) for p in payload["items"])

    # -- work stealing -----------------------------------------------------
    def steal(self, k: int) -> "Frontier":
        """Remove up to ``k`` items from the *bottom* of the stack and
        return them as a new frontier (possibly empty).

        The bottom items are the oldest unexplored subtree roots —
        under depth-first order the ones this exploration would reach
        *last*, which makes them the natural donation to an idle
        worker: the victim keeps its current locality (the top of the
        stack it is about to pop) and hands over the largest, most
        distant chunks of remaining work.  The two frontiers partition
        this one's items exactly (relative order preserved on both
        sides), so by the frontier invariant the stolen subtrees are
        disjoint from everything the victim keeps — stolen work is
        explored exactly once, wherever it lands.

        Deterministic: a pure function of item order and ``k``.
        """
        if k < 0:
            raise ValueError(f"steal requires k >= 0, got {k}")
        self._compact()
        k = min(k, len(self._items))
        stolen = self._items[:k]
        self._items = self._items[k:]
        return Frontier(stolen)

    # -- sharding ----------------------------------------------------------
    def split(self, k: int) -> List["Frontier"]:
        """Partition into ``k`` sub-frontiers (some possibly empty).

        Items are dealt round-robin **from the top of the stack**, so
        the items a serial run would explore soonest — which root the
        largest unexplored subtrees under depth-first order — spread
        evenly across shards.  Each shard preserves the relative LIFO
        order of its items; the shards are pairwise disjoint and their
        union (as multisets) is exactly this frontier, hence by the
        frontier invariant the sharded subtrees partition the remaining
        schedule set.  Deterministic: a pure function of item order.
        """
        if k < 1:
            raise ValueError(f"split requires k >= 1, got {k}")
        self._compact()
        shards: List[List[WorkItem]] = [[] for _ in range(k)]
        # deal in pop order (top first), then restore stack order
        for i, item in enumerate(reversed(self._items)):
            shards[i % k].append(item)
        return [Frontier(reversed(shard)) for shard in shards]
