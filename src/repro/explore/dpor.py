"""Dynamic partial-order reduction (Flanagan & Godefroid, POPL 2005).

Stateless DPOR with clock vectors and (optional) sleep sets:

* at every state along the current execution, every thread's *pending*
  operation is tested against the most recent conflicting,
  possibly-co-enabled event in the trace that does not already
  happen-before the thread; a backtrack point is registered at the
  state from which that event was executed (this pending-op formulation
  also catches races with currently *disabled* operations such as
  blocked lock acquisitions — essential for lock-heavy programs);
* sleep sets suppress re-exploration of independent siblings.

Race detection uses the **regular** happens-before relation — by the
paper's Section 4, the lazy HBR cannot simply replace it here because
not all linearizations of a lazy HBR are feasible.  (The prototype that
*adds* lazy-HBR pruning on top lives in
:mod:`repro.explore.lazy_dpor`.)

The implementation indexes the trace per memory location so the
backward scan for the latest conflicting event is O(events on that
location), not O(trace length).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.events import Event, OpKind
from ..core.dependence import conflicts, may_be_coenabled
from ..runtime.executor import Executor
from ..runtime.trace import PendingInfo
from .base import Explorer
from .frontier import Frontier, WorkItem
from .snapshots import SnapshotTree

DPOR_SNAPSHOT_VERSION = 1


class _Node:
    """One scheduling point on the DPOR stack."""

    __slots__ = ("enabled", "chosen", "backtrack", "done", "sleep",
                 "want_snap")

    def __init__(self, enabled: List[int], sleep: Set[int]) -> None:
        self.enabled = enabled
        self.chosen = -1
        self.backtrack: Set[int] = set()
        self.done: Set[int] = set()
        self.sleep: Set[int] = sleep
        #: race analysis registered a backtrack candidate here, so this
        #: state WILL be re-explored: snapshot it on the next replay
        #: pass through this depth (see _replay_stack)
        self.want_snap = False


def _pending_as_event(info: PendingInfo) -> Event:
    """View a pending operation as an (unstamped) event for the
    conflict predicates.

    The explorer hot path no longer needs this — the conflict
    predicates duck-type over :class:`PendingInfo` directly (it carries
    the same ``tid``/``kind``/``oid``/``key``/``released_mutex_oid``
    attributes) — but the conversion stays for diagnostics and tests.
    """
    return Event(
        index=-1,
        tid=info.tid,
        tindex=-1,
        kind=OpKind(info.kind),
        oid=info.oid,
        key=info.key,
        released_mutex_oid=info.released_mutex_oid,
    )


class DPORExplorer(Explorer):
    """Flanagan–Godefroid DPOR with clock vectors and sleep sets."""

    name = "dpor"
    #: race analysis needs the materialised trace and stamped events
    fast_replay = False

    def _new_executor(self):
        # Hard override: DPOR's race analysis walks ex.trace, so the
        # events must be materialised whatever self.fast_replay says
        # (run_single(fast=True) is a no-op for this strategy).
        return Executor(
            self.program,
            max_events=self.limits.max_events_per_schedule,
            fast_replay=False,
            snapshots=self.snapshot_tree is not None,
            engine=self.engine,
        )

    def __init__(self, program, limits=None, sleep_sets: bool = True) -> None:
        super().__init__(program, limits)
        self.sleep_sets = sleep_sets
        if not sleep_sets:
            self.stats.explorer_name = self.name = "dpor-nosleep"
        #: the DPOR stack, kept on the instance so in-progress
        #: exploration state can be snapshot/restored between schedules
        self._stack: List[_Node] = []
        self._started = False
        #: retired (instance, threads) handoffs from finished schedules,
        #: recycled by snapshot restores (see Executor.release_instance)
        self._instance_pool: List[Any] = []
        if self.limits.snapshot_budget_bytes > 0:
            self.snapshot_tree = SnapshotTree(
                self.limits.snapshot_budget_bytes
            )

    # ------------------------------------------------------------------
    def _explore(self) -> None:
        stack = self._stack
        first = not self._started
        while first or stack:
            first = False
            self._started = True
            if self._budget_exceeded():
                return
            self._maybe_checkpoint()
            self._schedule_started()
            pruned = self._run_one(stack)
            if pruned is None:
                # the wall-clock deadline fired mid-schedule
                # (``limit_hit`` is already set): discard the partial
                # run — a resumed exploration re-executes it
                self.stats.num_schedules -= 1
                return
            if pruned:
                self.stats.num_pruned += 1
            # backtrack: deepest node with an unexplored candidate
            while stack:
                node = stack[-1]
                cand = node.backtrack - node.done - node.sleep
                if cand:
                    prev = node.chosen
                    if self.sleep_sets and prev >= 0:
                        node.sleep.add(prev)
                    q = min(cand)
                    node.chosen = q
                    node.done.add(q)
                    break
                stack.pop()
            if not stack:
                self.stats.exhausted = not self.stats.limit_hit
                return

    # ------------------------------------------------------------------
    def _replay_stack(
        self, stack: List[_Node]
    ) -> Tuple[Executor, Dict[Tuple[int, object], List[int]]]:
        """Reconstruct the state after the stack's chosen prefix, plus
        the per-location index of trace positions for fast race lookup.

        Resumes from the deepest cached snapshot of the prefix when the
        snapshot tree has one — the per-location index is rebuilt from
        the restored trace (cheap dict appends, no re-execution) —
        falling back to plain stepwise replay.  Snapshot keys are
        prefixes of *already-executed* choices, so re-choosing a node's
        ``chosen`` during backtracking never invalidates the snapshots
        below it."""
        loc_index: Dict[Tuple[int, object], List[int]] = {}
        tree = self.snapshot_tree
        ex: Optional[Executor] = None
        start = 0
        if tree is not None and stack:
            cached = tree.lookup(tuple(node.chosen for node in stack))
            if cached is not None:
                start, snap = cached
                pool = self._instance_pool
                ex = Executor.from_snapshot(
                    snap, reuse=pool.pop() if pool else None
                )
                for event in ex.trace:
                    self._index_event(loc_index, ex.trace, event)
                tree.resumed_events += start
        if ex is None:
            ex = self._new_executor()
        for node in stack[start:]:
            if node.want_snap and tree is not None:
                # this node holds a pending backtrack candidate, so its
                # pre-state roots a future re-exploration: cache it now
                # that a replay is passing through anyway.  Snapshots
                # are taken on demand rather than at node creation —
                # DPOR's backtrack sets are sparse, so most scheduling
                # points are never revisited and eager snapshots were
                # measured to cost more than the replays they save.
                node.want_snap = False
                key = tuple(ex.schedule)
                if tree.wants(key):
                    tree.insert(key, ex.snapshot())
            self._index_event(loc_index, ex.trace, ex.step(node.chosen))
        if tree is not None:
            tree.replayed_events += len(stack) - start
        return ex, loc_index

    # ------------------------------------------------------------------
    def _run_one(self, stack: List[_Node]) -> Optional[bool]:
        """Replay the stack prefix, then extend to a terminal (or
        sleep-pruned) state, updating backtrack sets.  Returns True if
        the run was pruned by sleep sets, None if the wall-clock
        deadline fired mid-schedule (the stack stays valid: every
        appended node was fully race-analysed before its step ran, so
        a resumed run replays the prefix and picks up exactly at the
        first unanalysed state)."""
        ex, loc_index = self._replay_stack(stack)

        while True:
            if self._deadline_exceeded_midschedule():
                return None
            if ex.is_done():
                result = ex.finish()
                self.stats.num_events += result.num_events
                self._update_backtracks(ex, stack, loc_index)
                self._record_terminal(result)
                self._retire(ex)
                return False
            if len(ex.trace) >= len(stack):
                # a state we have not analysed yet
                self._update_backtracks(ex, stack, loc_index)
                enabled = ex.enabled()
                if len(ex.trace) == len(stack):
                    sleep = self._child_sleep(stack, ex)
                    node = _Node(enabled, sleep)
                    runnable = [t for t in enabled if t not in sleep]
                    if not runnable:
                        # every enabled thread is redundant here: the
                        # continuation is covered by an earlier branch
                        self._retire(ex)
                        return True
                    choice = runnable[0]
                    node.backtrack.add(choice)
                    node.chosen = choice
                    node.done.add(choice)
                    stack.append(node)
            self._index_event(loc_index, ex.trace, ex.step(stack[len(ex.trace)].chosen))

    def _retire(self, ex: Executor) -> None:
        """Bank a finished schedule's instance/threads for the next
        snapshot restore (bounded pool; shim programs opt out)."""
        pool = self._instance_pool
        if len(pool) < 4:
            handoff = ex.release_instance()
            if handoff is not None:
                pool.append(handoff)

    # ------------------------------------------------------------------
    # The frontier/work-item interface.  DPOR keeps its bespoke loop —
    # backtrack sets are updated *dynamically* by race analysis, so a
    # static Frontier.split would be unsound — but its backtrack points
    # serialize as the same WorkItem currency the kernel uses: stack
    # node i becomes a work item whose prefix is the schedule through
    # that node and whose annotation carries the node's backtrack/
    # done/sleep sets.  That buys intra-cell checkpoint/resume for
    # DPOR cells, in the same snapshot format the campaign store
    # threads around.
    # ------------------------------------------------------------------
    def to_work_items(self) -> Frontier:
        """The current stack as a frontier of serializable work items
        (bottom-to-top; only meaningful between schedules)."""
        frontier = Frontier()
        prefix: List[int] = []
        for node in self._stack:
            prefix.append(node.chosen)
            frontier.push(WorkItem(tuple(prefix), {
                "enabled": list(node.enabled),
                "chosen": node.chosen,
                "backtrack": sorted(node.backtrack),
                "done": sorted(node.done),
                "sleep": sorted(node.sleep),
            }))
        return frontier

    def _load_work_items(self, frontier: Frontier) -> None:
        self._stack = []
        for item in frontier:
            ann = item.annotation
            node = _Node(list(ann["enabled"]), set(ann["sleep"]))
            node.chosen = ann["chosen"]
            node.backtrack = set(ann["backtrack"])
            node.done = set(ann["done"])
            self._stack.append(node)

    def _aux_state_to_dict(self) -> Dict[str, Any]:
        """Extra serializable state; the lazy variant adds its cache."""
        return {}

    def _aux_state_from_dict(self, payload: Dict[str, Any]) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        """Serializable in-progress state; valid between schedules."""
        return {
            "version": DPOR_SNAPSHOT_VERSION,
            "kind": "dpor",
            "explorer": self.name,
            "program": self.program.name,
            "frontier": self.to_work_items().to_dict(),
            "stats": self.stats.to_dict(),
            "aux": self._aux_state_to_dict(),
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot`: continue a checkpointed run."""
        version = payload.get("version")
        if version != DPOR_SNAPSHOT_VERSION or payload.get("kind") != "dpor":
            raise ValueError(
                f"unsupported DPOR snapshot (version={version!r}, "
                f"kind={payload.get('kind')!r})"
            )
        if payload.get("explorer") != self.name:
            raise ValueError(
                f"snapshot of {payload.get('explorer')!r} cannot restore "
                f"a {self.name!r} explorer"
            )
        self._load_work_items(Frontier.from_dict(payload["frontier"]))
        self._started = True
        self._restore_stats(payload.get("stats"))
        self._aux_state_from_dict(payload.get("aux") or {})

    # ------------------------------------------------------------------
    def _child_sleep(self, stack: List[_Node], ex: Executor) -> Set[int]:
        """Sleep set inherited by the state just reached: parents'
        sleepers whose pending ops are independent of the executed
        event survive."""
        if not self.sleep_sets or not stack:
            return set()
        parent = stack[-1]
        if not parent.sleep:
            return set()
        last_event = ex.trace[-1]
        survivors: Set[int] = set()
        for tid in parent.sleep:
            info = ex.pending_info(tid, refresh_enabled=False)
            if info is None:
                continue
            if not conflicts(info, last_event):
                survivors.add(tid)
        return survivors

    # ------------------------------------------------------------------
    @staticmethod
    def _index_event(
        loc_index: Dict[Tuple[int, object], List[int]],
        trace: List[Event],
        event: Event,
    ) -> None:
        if event.oid >= 0:
            loc_index.setdefault((event.oid, event.key), []).append(event.index)
        if event.released_mutex_oid is not None:
            loc_index.setdefault(
                (event.released_mutex_oid, None), []
            ).append(event.index)

    def _update_backtracks(
        self,
        ex: Executor,
        stack: List[_Node],
        loc_index: Dict[Tuple[int, object], List[int]],
    ) -> None:
        """F–G race analysis: for every pending operation, find the
        latest conflicting, possibly-co-enabled, HB-unordered event and
        register a backtrack point before it."""
        trace = ex.trace
        # the race analysis never reads PendingInfo.enabled, so skip
        # the per-thread enabledness recheck the full accessor pays
        for info in ex.all_pending_infos(refresh_enabled=False):
            if info.oid < 0 and info.released_mutex_oid is None:
                continue
            # the conflict predicates duck-type over the PendingInfo;
            # no throwaway Event allocation per pending op
            pend = info
            cv = ex.engine.thread_clock_raw(info.tid)  # regular clock of tid
            i = self._latest_race(trace, loc_index, pend, cv)
            if i is None or i >= len(stack):
                continue
            node = stack[i]
            # E: threads that could get the pending op (or something
            # happening-before it) running at the pre-state of event i
            p = info.tid
            E: Set[int] = set()
            enabled_at_i = set(node.enabled)
            if p in enabled_at_i:
                E.add(p)
            for j in range(i + 1, len(trace)):
                e_j = trace[j]
                if e_j.tid in enabled_at_i and self._hb_pending(e_j, cv):
                    E.add(e_j.tid)
            if E:
                if not (E & (node.backtrack | node.done)):
                    node.backtrack.add(min(E))
                    node.want_snap = True
            else:
                before = len(node.backtrack)
                node.backtrack.update(enabled_at_i)
                if len(node.backtrack) != before:
                    node.want_snap = True

    def _latest_race(
        self,
        trace: List[Event],
        loc_index: Dict[Tuple[int, object], List[int]],
        pend,  # Event or PendingInfo (duck-typed)
        cv,
    ) -> Optional[int]:
        """Index of the latest event racing with ``pend`` (conflicting,
        possibly co-enabled, not happens-before the pending thread)."""
        # The per-location index lists are appended in trace order, so
        # each candidate source is already ascending: walk the (at
        # most) two lists as a descending merge instead of
        # materialising sorted(set(...)) per pending op per state.
        # WAIT events that released a mutex are indexed under the mutex
        # location already, so MUTEX_KINDS need nothing extra.
        a = loc_index.get((pend.oid, pend.key)) if pend.oid >= 0 else None
        b = (
            loc_index.get((pend.released_mutex_oid, None))
            if pend.released_mutex_oid is not None else None
        )
        ia = len(a) - 1 if a is not None else -1
        ib = len(b) - 1 if b is not None else -1
        while ia >= 0 or ib >= 0:
            va = a[ia] if ia >= 0 else -1
            vb = b[ib] if ib >= 0 else -1
            if va >= vb:
                i = va
                ia -= 1
                if vb == va:
                    ib -= 1  # same event under both locations
            else:
                i = vb
                ib -= 1
            e = trace[i]
            if e.tid == pend.tid:
                continue
            if not conflicts(e, pend):
                continue
            if not may_be_coenabled(e, pend):
                continue
            if self._hb_pending(e, cv):
                # already ordered before the pending op: not a race, and
                # nothing earlier on this location can race either
                # (later events on the location dominate earlier ones);
                # keep scanning, though, because a non-modifying chain
                # may hide an older racing write.
                continue
            return i
        return None

    @staticmethod
    def _hb_pending(e: Event, cv) -> bool:
        """Does event ``e`` happen-before the pending op of the thread
        whose current regular clock is ``cv``?  ``cv`` may be a raw
        list clock or a :class:`VectorClock`; entries past its length
        are zero, and every stamped clock has ``clock[tid] >= 1``."""
        etid = e.tid
        return etid < len(cv) and e.clock[etid] <= cv[etid]
