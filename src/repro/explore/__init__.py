"""Exploration strategies for systematic concurrency testing."""

from .base import (
    DEFAULT_SCHEDULE_LIMIT,
    ErrorFinding,
    ExplorationLimits,
    ExplorationStats,
    Explorer,
)
from .bounded import (
    IterativeContextBoundingExplorer,
    PreemptionBoundedExplorer,
)
from .caching import HBRCachingExplorer
from .controller import (
    RESUMABLE_EXPLORERS,
    SEEDED_EXPLORERS,
    SPLITTABLE_EXPLORERS,
    STANDARD_EXPLORERS,
    ComparisonRow,
    make_explorer,
    run_matrix,
    run_single,
    states_found,
    supports_snapshot,
    supports_split,
)
from .delay import DelayBoundedExplorer
from .dfs import DFSExplorer
from .dpor import DPORExplorer
from .frontier import Frontier, WorkItem
from .kernel import Expansion, KernelExplorer, Strategy
from .lazy_dpor import LazyDPORExplorer
from .minimize import MinimizationResult, minimize_schedule
from .pct import PCTExplorer
from .random_walk import RandomWalkExplorer
from .snapshots import SnapshotTree

__all__ = [
    "MinimizationResult",
    "minimize_schedule",
    "DEFAULT_SCHEDULE_LIMIT",
    "Expansion",
    "Frontier",
    "KernelExplorer",
    "RESUMABLE_EXPLORERS",
    "SEEDED_EXPLORERS",
    "SPLITTABLE_EXPLORERS",
    "STANDARD_EXPLORERS",
    "Strategy",
    "WorkItem",
    "supports_snapshot",
    "supports_split",
    "ComparisonRow",
    "make_explorer",
    "run_single",
    "DFSExplorer",
    "DelayBoundedExplorer",
    "DPORExplorer",
    "ErrorFinding",
    "ExplorationLimits",
    "ExplorationStats",
    "Explorer",
    "HBRCachingExplorer",
    "IterativeContextBoundingExplorer",
    "LazyDPORExplorer",
    "PCTExplorer",
    "PreemptionBoundedExplorer",
    "RandomWalkExplorer",
    "SnapshotTree",
    "run_matrix",
    "states_found",
]
