"""Iterative preemption bounding (Musuvathi & Qadeer; CHESS).

The reference [4] of the paper introduced HBR caching in the context of
context-bounded exploration; this explorer provides that context: a
depth-first enumeration restricted to schedules with at most ``bound``
preemptions (unforced context switches), optionally iterating the bound
upward.  With ``bound=None`` it degenerates to plain DFS.

A context switch at a scheduling point is *forced* (free) when the
previously running thread is finished or blocked; otherwise switching
to a different thread costs one preemption.
"""

from __future__ import annotations

from typing import List, Optional

from .base import ExplorationLimits, Explorer


class _Frame:
    __slots__ = ("choices", "idx", "prev_tid", "budget")

    def __init__(self, choices: List[int], prev_tid: int, budget: int) -> None:
        self.choices = choices
        self.idx = 0
        self.prev_tid = prev_tid
        self.budget = budget

    @property
    def chosen(self) -> int:
        return self.choices[self.idx]


class PreemptionBoundedExplorer(Explorer):
    """DFS over schedules with at most ``bound`` preemptions."""

    name = "preempt-bounded"

    def __init__(self, program, limits=None, bound: Optional[int] = 2) -> None:
        super().__init__(program, limits)
        self.bound = bound
        if bound is not None:
            self.stats.explorer_name = self.name = f"preempt-bounded({bound})"

    def _choices(self, enabled: List[int], prev_tid: int, budget: int) -> List[int]:
        """Schedulable threads under the remaining preemption budget,
        non-preempting choice first (so cheap schedules come first)."""
        if prev_tid in enabled:
            if budget <= 0:
                return [prev_tid]
            return [prev_tid] + [t for t in enabled if t != prev_tid]
        return list(enabled)  # forced switch: free

    def _explore(self) -> None:
        path: List[_Frame] = []
        first = True
        while first or path:
            first = False
            if self._budget_exceeded():
                return
            self._schedule_started()
            ex = self._new_executor()
            ex.replay_prefix([frame.chosen for frame in path])
            # continue from the end of the replayed prefix
            prev_tid = path[-1].chosen if path else -1
            budget = path[-1].budget if path else (
                self.bound if self.bound is not None else 1 << 30
            )
            if path:
                # account for the preemption taken by the replayed frame
                budget = self._budget_after(path[-1])
            while not ex.is_done():
                enabled = ex.enabled()
                choices = self._choices(enabled, prev_tid, budget)
                frame = _Frame(choices, prev_tid, budget)
                path.append(frame)
                chosen = frame.chosen
                budget = self._budget_after(frame)
                prev_tid = chosen
                ex.step(chosen)
            result = ex.finish()
            self.stats.num_events += result.num_events
            self._record_terminal(result)
            while path and path[-1].idx + 1 >= len(path[-1].choices):
                path.pop()
            if path:
                path[-1].idx += 1
            else:
                self.stats.exhausted = not self.stats.limit_hit
                return

    def _budget_after(self, frame: _Frame) -> int:
        """Remaining budget after taking ``frame.chosen``."""
        chosen = frame.chosen
        if frame.prev_tid != -1 and frame.prev_tid != chosen and \
                frame.prev_tid in frame.choices:
            return frame.budget - 1
        return frame.budget


class IterativeContextBoundingExplorer(Explorer):
    """CHESS-style iterative context bounding (Musuvathi & Qadeer):
    explore with preemption bound 0, then 1, then 2, ... up to
    ``max_bound``, sharing one schedule budget.

    Low bounds reach most bugs with tiny schedule counts (the empirical
    small-bound hypothesis); raising the bound converges to full DFS.
    Re-exploration across rounds is accepted, as in CHESS.
    """

    name = "iterative-cb"

    def __init__(self, program, limits=None, max_bound: int = 3) -> None:
        super().__init__(program, limits)
        self.max_bound = max_bound
        self.bound_reached = -1

    def _explore(self) -> None:
        remaining = self.limits.max_schedules
        for bound in range(self.max_bound + 1):
            if remaining <= 0:
                self.stats.limit_hit = True
                return
            inner_limits = ExplorationLimits(
                max_schedules=remaining,
                max_seconds=None,
                max_events_per_schedule=self.limits.max_events_per_schedule,
            )
            inner = PreemptionBoundedExplorer(
                self.program, inner_limits, bound=bound
            )
            # share the recording sets so stats accumulate across rounds
            inner._hbr_fps = self._hbr_fps
            inner._lazy_fps = self._lazy_fps
            inner._state_hashes = self._state_hashes
            inner._error_kinds = self._error_kinds
            inner.stats.errors = self.stats.errors
            inner_stats = inner.run()
            self.stats.num_schedules += inner_stats.num_schedules
            self.stats.num_complete += inner_stats.num_complete
            self.stats.num_events += inner_stats.num_events
            self.stats.num_hbrs = len(self._hbr_fps)
            self.stats.num_lazy_hbrs = len(self._lazy_fps)
            self.stats.num_states = len(self._state_hashes)
            remaining -= inner_stats.num_schedules
            self.bound_reached = bound
            self.stats.extra[f"schedules_bound_{bound}"] = \
                inner_stats.num_schedules
            if self._deadline is not None:
                import time
                if time.monotonic() > self._deadline:
                    self.stats.limit_hit = True
                    return
        self.stats.limit_hit = self.stats.num_schedules >= \
            self.limits.max_schedules
