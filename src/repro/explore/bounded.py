"""Iterative preemption bounding (Musuvathi & Qadeer; CHESS).

The reference [4] of the paper introduced HBR caching in the context of
context-bounded exploration; this explorer provides that context: a
depth-first enumeration restricted to schedules with at most ``bound``
preemptions (unforced context switches), optionally iterating the bound
upward.  With ``bound=None`` it degenerates to plain DFS.

A context switch at a scheduling point is *forced* (free) when the
previously running thread is finished or blocked; otherwise switching
to a different thread costs one preemption.

Both explorers ride on the unified kernel.  The path annotation is the
pair ``(prev, budget)`` — the last scheduled thread and the remaining
preemption budget — which fully determines the schedulable choices at
any point; iterative bounding simply seeds the frontier with one root
per bound (bound 0 on top), so the LIFO kernel order runs the rounds
strictly in sequence, sharing one schedule budget, exactly as CHESS
does.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .base import ExplorationStats
from .frontier import Annotation, Frontier, WorkItem
from .kernel import Expansion, KernelExplorer, Strategy

#: effectively-infinite preemption budget for ``bound=None``
_UNBOUNDED = 1 << 30


def _choices(enabled: List[int], prev: int, budget: int) -> List[int]:
    """Schedulable threads under the remaining preemption budget,
    non-preempting choice first (so cheap schedules come first)."""
    if prev in enabled:
        if budget <= 0:
            return [prev]
        return [prev] + [t for t in enabled if t != prev]
    return list(enabled)  # forced switch: free


def _budget_after(prev: int, budget: int, choices: List[int],
                  chosen: int) -> int:
    """Remaining budget after scheduling ``chosen``: a switch away from
    a still-schedulable previous thread costs one preemption."""
    if prev != -1 and prev != chosen and prev in choices:
        return budget - 1
    return budget


class PreemptionBoundedStrategy(Strategy):
    """DFS over schedules with at most ``bound`` preemptions."""

    def __init__(self, bound: Optional[int] = 2) -> None:
        self.bound = bound
        self.name = ("preempt-bounded" if bound is None
                     else f"preempt-bounded({bound})")

    def initial_annotation(self) -> Annotation:
        return {
            "prev": -1,
            "budget": self.bound if self.bound is not None else _UNBOUNDED,
        }

    def expand(self, enabled: List[int], ann: Annotation) -> Expansion:
        prev = ann["prev"]
        budget = ann["budget"]
        choices = _choices(enabled, prev, budget)
        chosen = choices[0]
        return Expansion(
            chosen=chosen,
            ann_after={
                "prev": chosen,
                "budget": _budget_after(prev, budget, choices, chosen),
            },
            alternatives=[
                (c, {"prev": c,
                     "budget": _budget_after(prev, budget, choices, c)})
                for c in choices[1:]
            ],
        )


class PreemptionBoundedExplorer(KernelExplorer):
    """DFS over schedules with at most ``bound`` preemptions."""

    name = "preempt-bounded"

    def __init__(self, program, limits=None, bound: Optional[int] = 2) -> None:
        super().__init__(
            program, limits, strategy=PreemptionBoundedStrategy(bound)
        )
        self.bound = bound


class IterativeContextBoundingStrategy(PreemptionBoundedStrategy):
    """CHESS-style iterative context bounding (Musuvathi & Qadeer):
    explore with preemption bound 0, then 1, then 2, ... up to
    ``max_bound``, sharing one schedule budget.

    Low bounds reach most bugs with tiny schedule counts (the empirical
    small-bound hypothesis); raising the bound converges to full DFS.
    Re-exploration across rounds is accepted, as in CHESS.
    """

    name = "iterative-cb"

    def __init__(self, max_bound: int = 3) -> None:
        super().__init__(bound=None)
        self.name = "iterative-cb"
        self.max_bound = max_bound
        self._round_schedules: Dict[int, int] = {}
        self.bound_reached = -1

    def initial_items(self) -> List[WorkItem]:
        # exploration order: bound 0 first; each annotation carries its
        # round so per-round schedule counts survive serialization
        return [
            WorkItem((), {"bound": b, "prev": -1, "budget": b})
            for b in range(self.max_bound + 1)
        ]

    def expand(self, enabled: List[int], ann: Annotation) -> Expansion:
        exp = super().expand(enabled, ann)
        bound = ann["bound"]
        exp.ann_after["bound"] = bound
        for _, alt_ann in exp.alternatives:
            alt_ann["bound"] = bound
        return exp

    def on_schedule_start(self, item: WorkItem) -> None:
        bound = item.annotation["bound"]
        self._round_schedules[bound] = \
            self._round_schedules.get(bound, 0) + 1
        if bound > self.bound_reached:
            self.bound_reached = bound

    def finalize(self, stats: ExplorationStats,
                 frontier: Frontier) -> None:
        for bound in sorted(self._round_schedules):
            stats.extra[f"schedules_bound_{bound}"] = \
                self._round_schedules[bound]
        # iterative bounding re-explores low-bound schedules at higher
        # bounds, so an empty frontier means the budget decision — not
        # exhaustion of the reduced space — ended the run (the
        # pre-kernel explorer reported the same)
        stats.exhausted = False
        if not frontier:
            stats.limit_hit = (
                stats.num_schedules >= self.kernel.limits.max_schedules
            )

    def state_to_dict(self) -> Dict[str, Any]:
        return {
            "round_schedules": {
                str(b): n for b, n in self._round_schedules.items()
            },
            "bound_reached": self.bound_reached,
        }

    def state_from_dict(self, payload: Dict[str, Any]) -> None:
        self._round_schedules = {
            int(b): int(n)
            for b, n in (payload.get("round_schedules") or {}).items()
        }
        self.bound_reached = payload.get("bound_reached", -1)


class IterativeContextBoundingExplorer(KernelExplorer):
    """Iterative context bounding on the kernel; see the strategy."""

    name = "iterative-cb"

    def __init__(self, program, limits=None, max_bound: int = 3) -> None:
        super().__init__(
            program, limits,
            strategy=IterativeContextBoundingStrategy(max_bound),
        )
        self.max_bound = max_bound

    @property
    def bound_reached(self) -> int:
        return self.strategy.bound_reached
