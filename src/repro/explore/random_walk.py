"""Random-walk exploration: independent uniformly-scheduled runs.

The classic stress-testing baseline: no reduction, no memory between
runs.  Useful in the harness to show how many schedules random testing
needs to reach the states POR strategies reach systematically.
"""

from __future__ import annotations

import random

from .base import Explorer


class RandomWalkExplorer(Explorer):
    """Runs ``limits.max_schedules`` independent random schedules."""

    name = "random"

    def __init__(self, program, limits=None, seed: int = 0) -> None:
        super().__init__(program, limits)
        self.seed = seed

    def _explore(self) -> None:
        rng = random.Random(self.seed)
        randrange = rng.randrange
        while not self._budget_exceeded():
            self._schedule_started()
            ex = self._new_executor()
            # hot loop: bound methods hoisted, choices trusted (drawn
            # from the enabled list we just fetched)
            is_done = ex.is_done
            enabled_of = ex.enabled
            step = ex.step
            while not is_done():
                enabled = enabled_of()
                step(enabled[randrange(len(enabled))], True)
            result = ex.finish()
            self.stats.num_events += result.num_events
            self._record_terminal(result)
