"""The unified exploration kernel: one replay loop, pluggable strategies.

Every DFS-family explorer in the paper's study — plain DFS, preemption
bounding, iterative context bounding, delay bounding, (lazy) HBR
caching — is the same stateless-replay loop differing only in how the
next schedule prefix is chosen.  The kernel owns that loop: replay,
budgets, statistics, pruning, checkpointing; a :class:`Strategy` owns
only the scheduling policy, expressed through three hooks:

* ``initial_items()`` — the roots of the search (usually one empty
  prefix; iterative bounding seeds one root per bound);
* ``expand(enabled, ann)`` — at one scheduling point, pick the default
  choice and enumerate the sibling alternatives (each a serializable
  :class:`~repro.explore.frontier.WorkItem` annotation);
* ``on_step(ex)`` — optional pruning after an executed step (HBR
  caching returns True on a fingerprint-cache hit).

The kernel drives an explicit :class:`~repro.explore.frontier.Frontier`
instead of an implicit Python-local stack of frames.  Popping an item,
replaying its prefix, extending greedily with the strategy's default
choices, and pushing each scheduling point's alternatives in reverse
order reproduces *byte-for-byte* the schedule sequence of the old
frame-based depth-first loops (golden-equivalence-tested over the
``small`` suite) — while making the in-progress state serializable:
``snapshot()``/``restore()`` checkpoint and resume an exploration, and
``Frontier.split(k)`` shards one cell across workers.

See DESIGN.md §3.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..runtime.executor import Executor
from .base import ExplorationStats, Explorer
from .frontier import Annotation, Frontier, WorkItem
from .snapshots import SnapshotTree

SNAPSHOT_VERSION = 1


class Expansion:
    """A strategy's decision at one scheduling point.

    ``chosen`` is the default choice the kernel executes now;
    ``ann_after`` is the path annotation after taking it;
    ``alternatives`` lists the sibling choices *in exploration order*
    (first = explored soonest), each with the annotation its subtree
    starts from.
    """

    __slots__ = ("chosen", "ann_after", "alternatives")

    def __init__(
        self,
        chosen: int,
        ann_after: Annotation,
        alternatives: Sequence[Tuple[int, Annotation]] = (),
    ) -> None:
        self.chosen = chosen
        self.ann_after = ann_after
        self.alternatives = alternatives


class Strategy:
    """Scheduling policy plugged into :class:`KernelExplorer`."""

    #: strategy name; becomes the explorer/stats name
    name = "strategy"
    #: see :attr:`repro.explore.base.Explorer.fast_replay`
    fast_replay = True
    #: safe to shard via ``Frontier.split``?  True for every kernel
    #: strategy (their work items are self-contained subtree roots)
    supports_split = True

    def bind(self, kernel: "KernelExplorer") -> None:
        """Called once by the kernel before exploration; strategies
        needing the limits or stats keep the reference."""
        self.kernel = kernel

    def initial_items(self) -> List[WorkItem]:
        """Roots of the search, in exploration order."""
        return [WorkItem((), self.initial_annotation())]

    def initial_annotation(self) -> Annotation:
        return {}

    def expand(self, enabled: List[int], ann: Annotation) -> Expansion:
        raise NotImplementedError

    def on_step(self, ex) -> bool:
        """Called after each *newly chosen* executed step (replayed
        prefix steps were accounted when first executed).  Return True
        to prune the schedule here."""
        return False

    def on_schedule_start(self, item: WorkItem) -> None:
        """Called as each work item is popped, before replay."""

    def on_schedule_abort(self) -> None:
        """Called when the kernel abandons an in-flight schedule (the
        mid-schedule wall-clock deadline fired).  The work item is
        re-pushed and re-executed on resume, so strategies with global
        mutable state touched by ``on_step`` (fingerprint caches) must
        roll back this schedule's effects here — otherwise the resumed
        re-execution would see its own stale insertions and prune its
        whole subtree."""

    def finalize(self, stats: ExplorationStats, frontier: Frontier) -> None:
        """Called once after the kernel loop ends (exhaustion or
        limit); may add ``stats.extra`` entries or refine the
        ``exhausted``/``limit_hit`` flags."""

    # -- serialization of global strategy state (caches, counters) ---------
    def state_to_dict(self) -> Dict[str, Any]:
        return {}

    def state_from_dict(self, payload: Dict[str, Any]) -> None:
        pass


class KernelExplorer(Explorer):
    """Explorer driven by a :class:`Frontier` and a :class:`Strategy`.

    The in-progress exploration state is exactly ``(frontier, stats,
    strategy state)`` — all serializable — so the kernel supports:

    * ``snapshot()`` / ``restore()`` — intra-cell checkpoint/resume:
      a restored run continues with the identical remaining schedule
      set (budgets are cumulative: restored ``num_schedules`` and
      ``elapsed`` count against ``max_schedules``/``max_seconds``);
    * ``run_seed(min_items, max_schedules)`` — expand just enough to
      split: explore until the frontier holds at least ``min_items``
      disjoint subtree roots (or the seed budget runs out), leaving
      ``self.frontier`` ready for ``Frontier.split(k)``;
    * ``schedule_sink`` — optional list receiving every executed
      schedule (terminal runs in full, pruned runs as the executed
      prefix), used by the golden-equivalence tests.
    """

    def __init__(self, program, limits=None, strategy: Strategy = None
                 ) -> None:
        if strategy is None:  # pragma: no cover - defensive
            raise ValueError("KernelExplorer requires a strategy")
        super().__init__(program, limits)
        self.strategy = strategy
        self.fast_replay = strategy.fast_replay
        self.name = strategy.name
        self.stats.explorer_name = strategy.name
        strategy.bind(self)
        self.frontier = Frontier()
        for item in reversed(strategy.initial_items()):
            self.frontier.push(item)
        self.schedule_sink: Optional[List[List[int]]] = None
        self._seed_target: Optional[int] = None
        # retired program instances recycled into from_snapshot (see
        # Executor.release_instance: DSL programs only, bounded depth)
        self._instance_pool: List[Any] = []
        # depth-0 snapshot of the first executor: later from-scratch
        # replays restore it (with a pooled instance) instead of
        # re-instantiating the program — observably identical by the
        # snapshot-equivalence guarantee, and the restore path rides
        # the op cache
        self._boot_snap = None
        if self.limits.snapshot_budget_bytes > 0:
            self.snapshot_tree = SnapshotTree(
                self.limits.snapshot_budget_bytes
            )

    # ------------------------------------------------------------------
    def _explore(self) -> None:
        frontier = self.frontier
        strategy = self.strategy
        sink = self.schedule_sink
        while frontier:
            # the budget probe runs the control callback first: it may
            # request a stop (honoured by the same probe) or steal
            # frontier items, and a checkpoint taken afterwards must
            # reflect that
            if self._budget_exceeded():
                return  # frontier preserved: snapshot() resumes here
            # checkpoint BEFORE popping: a snapshot must contain the
            # complete remaining frontier, including the item about to
            # be explored (resuming re-executes it)
            self._maybe_checkpoint()
            if self._seed_target is not None:
                if len(frontier) >= self._seed_target:
                    return
                # seed-for-split mode: expand breadth-first so the
                # frontier grows into many similarly-deep subtree
                # roots (LIFO pops would consume it as fast as it
                # grows and leave exponentially skewed shards)
                item = frontier.pop_shallowest()
            else:
                item = frontier.pop()
            strategy.on_schedule_start(item)
            self._schedule_started()
            # resume from the deepest cached ancestor state instead of
            # schedule step zero; a tree miss (cold cache, eviction,
            # disabled budget) falls back to plain replay — the two
            # paths are observably identical (snapshot equivalence)
            prefix: List[int] = list(item.prefix)
            tree = self.snapshot_tree
            pool = self._instance_pool
            ex: Optional[Executor] = None
            if tree is not None and prefix:
                cached = tree.lookup(item.prefix)
                if cached is not None:
                    depth, snap = cached
                    ex = Executor.from_snapshot(
                        snap, reuse=pool.pop() if pool else None
                    )
                    ex.replay_prefix(prefix[depth:])
                    tree.resumed_events += depth
                    tree.replayed_events += len(prefix) - depth
            if ex is None:
                boot = self._boot_snap
                if boot is not None:
                    ex = Executor.from_snapshot(
                        boot, reuse=pool.pop() if pool else None
                    )
                else:
                    ex = self._new_executor()
                    if ex._record:
                        # tapes are recorded from step zero (the op
                        # cache forces it even under snapshots=False),
                        # so the depth-0 snapshot is well-defined
                        ex._snapshot_ok = True
                        self._boot_snap = ex.snapshot()
                ex.replay_prefix(prefix)
                if tree is not None:
                    tree.replayed_events += len(prefix)
            ann = item.annotation
            pruned = False
            aborted = False
            # alternatives discovered along this schedule: (depth,
            # alts) collected locally and only published to the
            # frontier once the schedule completes, so a mid-schedule
            # deadline abort leaves the frontier exactly as popped
            discovered: List[Tuple[int, Sequence[Tuple[int, Annotation]]]] \
                = []
            # per-schedule hot loop: bound methods hoisted, the default
            # (no-op) on_step hook and the deadline probe compiled out
            # when inert — this loop runs once per scheduling point of
            # every schedule in a campaign
            ex_is_done = ex.is_done
            ex_enabled = ex.enabled
            ex_step = ex.step
            expand = strategy.expand
            prefix_append = prefix.append
            on_step = (
                strategy.on_step
                if type(strategy).on_step is not Strategy.on_step
                else None
            )
            probe_deadline = (
                self._deadline_exceeded_midschedule
                if self._deadline is not None
                or "_deadline_exceeded_midschedule" in self.__dict__
                else None
            )
            while not ex_is_done():
                if probe_deadline is not None and probe_deadline():
                    aborted = True
                    break
                exp = expand(ex_enabled(), ann)
                if exp.alternatives:
                    discovered.append((len(prefix), exp.alternatives))
                    # the state here roots sibling subtrees: cache it so
                    # their work items resume instead of replaying
                    if tree is not None:
                        key = tuple(prefix)
                        if tree.wants(key):
                            tree.insert(key, ex.snapshot())
                ann = exp.ann_after
                chosen = exp.chosen
                prefix_append(chosen)
                ex_step(chosen)
                if on_step is not None and on_step(ex):
                    pruned = True
                    break
            if aborted:
                # the deadline fired mid-schedule: discard the partial
                # run (it is re-executed on resume), roll back any
                # strategy state it mutated, and push the item back so
                # the frontier stays the exact remaining set
                self.stats.num_schedules -= 1
                strategy.on_schedule_abort()
                frontier.push(item)
                return
            for depth, alts in discovered:
                base = tuple(prefix[:depth])
                for tid, alt_ann in reversed(list(alts)):
                    frontier.push(WorkItem(base + (tid,), alt_ann))
            if pruned:
                self.stats.num_pruned += 1
                self.stats.num_events += ex.num_events
                if sink is not None:
                    sink.append(list(prefix))
            else:
                result = ex.finish()
                self.stats.num_events += result.num_events
                self._record_terminal(result)
                if sink is not None:
                    sink.append(list(result.schedule))
            if len(pool) < 4:
                retired = ex.release_instance()
                if retired is not None:
                    pool.append(retired)
        self.stats.exhausted = not self.stats.limit_hit

    def run(self) -> ExplorationStats:
        stats = super().run()
        self.strategy.finalize(stats, self.frontier)
        return stats

    # ------------------------------------------------------------------
    def run_seed(self, min_items: int,
                 max_schedules: int = 64) -> ExplorationStats:
        """Explore just enough to shard: stop as soon as the frontier
        holds ``min_items`` items (or the seed budget is consumed, or
        the space is exhausted).  Deterministic; the schedules executed
        here are exactly the first schedules a serial run executes, so
        seed stats merge cleanly with shard stats."""
        from .base import ExplorationLimits

        self._seed_target = max(1, min_items)
        outer = self.limits
        self.limits = ExplorationLimits(
            max_schedules=min(max_schedules, outer.max_schedules),
            max_seconds=None,
            max_events_per_schedule=outer.max_events_per_schedule,
            snapshot_budget_bytes=outer.snapshot_budget_bytes,
        )
        try:
            stats = self.run()
        finally:
            self.limits = outer
            self._seed_target = None
        if self.frontier:
            # stopping early is not a real budget event for the cell
            stats.limit_hit = False
            stats.exhausted = False
        return stats

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Serializable in-progress state; valid between schedules."""
        return {
            "version": SNAPSHOT_VERSION,
            "explorer": self.name,
            "program": self.program.name,
            "frontier": self.frontier.to_dict(),
            "stats": self.stats.to_dict(),
            "strategy": self.strategy.state_to_dict(),
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        """Inverse of :meth:`snapshot`: continue a checkpointed run.

        The restored frontier is the exact remaining schedule set;
        restored statistics (including the fingerprint sets) carry
        over, and the restored ``elapsed``/``num_schedules`` count
        against this run's budgets.
        """
        version = payload.get("version")
        if version != SNAPSHOT_VERSION:
            raise ValueError(f"unsupported snapshot version {version!r}")
        if payload.get("explorer") != self.name:
            raise ValueError(
                f"snapshot of {payload.get('explorer')!r} cannot restore "
                f"a {self.name!r} explorer"
            )
        self.frontier = Frontier.from_dict(payload["frontier"])
        self._restore_stats(payload.get("stats"))
        self.strategy.state_from_dict(payload.get("strategy") or {})
