"""Lazy DPOR prototype — the paper's Section 4 future work.

The paper observes that the lazy HBR cannot simply replace the regular
HBR inside DPOR, because not every linearization of a lazy HBR is
feasible.  What *can* be done soundly today is to combine the two
mechanisms:

* DPOR's race detection and backtracking run unchanged on the regular
  HBR (so the set of branches considered is the sound F–G set);
* additionally, after every executed event the **lazy** prefix
  fingerprint is checked against a global cache; on a hit, the current
  branch's continuation provably reaches only states reachable from the
  earlier, equivalent prefix.

Caveat (documented, and measured in the ablation benchmark): pruning a
branch also skips the race analysis its suffix would have performed, so
backtrack points that only that suffix would have added to *this*
branch's ancestors can be lost.  Equivalent prefixes are extended
elsewhere — but under a different prefix whose ancestor nodes are
different stack entries.

**This explorer is approximate.**  Hypothesis-driven random-program
testing found a concrete counterexample (pinned as an ``@example`` in
``tests/test_random_program_soundness.py``): a 2-thread, 7-event
program where exactly the backtrack-loss mechanism above drops one of
two terminal states.  On every benchmark of the shipped suite the
explorer still finds the full DFS state set (asserted by the suite
soundness tests), and it only ever *under*-approximates — every state
it reports is a real reachable state, and its statistics stay within
the paper's inequality — but exact coverage on arbitrary programs is
not guaranteed.  Making the combination precise remains future work,
as in the paper's Section 4.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.cache import FingerprintCache
from .dpor import DPORExplorer, _Node


class LazyDPORExplorer(DPORExplorer):
    """DPOR + lazy-HBR prefix pruning (prototype)."""

    name = "lazy-dpor"

    def __init__(
        self,
        program,
        limits=None,
        sleep_sets: bool = True,
        cache_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(program, limits, sleep_sets=sleep_sets)
        self.stats.explorer_name = self.name = "lazy-dpor"
        self.cache = FingerprintCache(cache_capacity)

    def _aux_state_to_dict(self) -> Dict[str, Any]:
        return self.cache.to_dict()

    def _aux_state_from_dict(self, payload: Dict[str, Any]) -> None:
        if payload:
            self.cache = FingerprintCache.from_dict(payload)

    def _run_one(self, stack) -> Optional[bool]:
        ex, loc_index = self._replay_stack(stack)

        while True:
            if self._deadline_exceeded_midschedule():
                return None
            if ex.is_done():
                result = ex.finish()
                self.stats.num_events += result.num_events
                self._update_backtracks(ex, stack, loc_index)
                self._record_terminal(result)
                return False
            if len(ex.trace) >= len(stack):
                self._update_backtracks(ex, stack, loc_index)
                enabled = ex.enabled()
                if len(ex.trace) == len(stack):
                    sleep = self._child_sleep(stack, ex)
                    node = _Node(enabled, sleep)
                    runnable = [t for t in enabled if t not in sleep]
                    if not runnable:
                        return True
                    choice = runnable[0]
                    node.backtrack.add(choice)
                    node.chosen = choice
                    node.done.add(choice)
                    stack.append(node)
            event = ex.step(stack[len(ex.trace)].chosen)
            self._index_event(loc_index, ex.trace, event)
            # lazy-HBR pruning: skip continuations of prefixes whose
            # lazy HBR was already reached by an earlier feasible prefix
            if not self.cache.insert(ex.engine.lazy_fingerprint()):
                self.stats.num_events += ex.num_events
                return True

    def run(self):
        stats = super().run()
        stats.extra["cache_size"] = len(self.cache)
        stats.extra["cache_hits"] = self.cache.hits
        return stats
