"""Explorer framework: limits, statistics and the base class.

An explorer enumerates schedules of one program.  All concrete
explorers are *stateless* in the SCT sense: each schedule is executed
against a freshly built program instance, replaying the prefix of
thread choices that leads to the branch point (the standard architecture
of Verisoft/CHESS-style tools, which cannot checkpoint states).

Statistics mirror the quantities of the paper's evaluation: the number
of schedules executed, and the numbers of distinct terminal HBRs,
terminal lazy HBRs and final states among completed schedules.  The
paper's inequality

    #states <= #lazy HBRs <= #HBRs <= #schedules

is checked by :meth:`ExplorationStats.verify_inequality` (and enforced
in the integration tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from ..errors import GuestError
from ..runtime.executor import Executor
from ..runtime.program import Program
from ..runtime.trace import TraceResult

DEFAULT_SCHEDULE_LIMIT = 100_000


@dataclass
class ExplorationLimits:
    """Hard bounds on one exploration."""

    max_schedules: int = DEFAULT_SCHEDULE_LIMIT
    max_seconds: Optional[float] = None
    max_events_per_schedule: int = 20_000


@dataclass
class ErrorFinding:
    """One distinct property violation and a schedule reproducing it."""

    kind: str
    message: str
    schedule: List[int]


@dataclass
class ExplorationStats:
    """Outcome of one exploration run."""

    program_name: str
    explorer_name: str
    num_schedules: int = 0          #: executions performed (incl. pruned)
    num_complete: int = 0           #: executions that ran to a terminal state
    num_pruned: int = 0             #: executions cut short by caching/sleep sets
    num_hbrs: int = 0               #: distinct terminal (regular) HBRs
    num_lazy_hbrs: int = 0          #: distinct terminal lazy HBRs
    num_states: int = 0             #: distinct terminal program states
    num_events: int = 0             #: total events executed
    errors: List[ErrorFinding] = field(default_factory=list)
    limit_hit: bool = False         #: stopped by a limit, not exhaustion
    exhausted: bool = False         #: the full reduced state space was covered
    elapsed: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)

    def verify_inequality(self) -> None:
        """Assert the paper's Section 3 inequality chain."""
        if not (
            self.num_states <= self.num_lazy_hbrs <= self.num_hbrs
            <= self.num_schedules
        ):
            raise AssertionError(
                f"inequality violated for {self.program_name} / "
                f"{self.explorer_name}: states={self.num_states} "
                f"lazy={self.num_lazy_hbrs} hbrs={self.num_hbrs} "
                f"schedules={self.num_schedules}"
            )

    def summary(self) -> str:
        mark = "!" if self.limit_hit else ("*" if self.exhausted else "")
        return (
            f"{self.program_name:<28} {self.explorer_name:<14} "
            f"sched={self.num_schedules:<7} hbrs={self.num_hbrs:<7} "
            f"lazy={self.num_lazy_hbrs:<7} states={self.num_states:<7} "
            f"errors={len(self.errors)} {mark}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form, for persisting experiment results."""
        return {
            "program": self.program_name,
            "explorer": self.explorer_name,
            "num_schedules": self.num_schedules,
            "num_complete": self.num_complete,
            "num_pruned": self.num_pruned,
            "num_hbrs": self.num_hbrs,
            "num_lazy_hbrs": self.num_lazy_hbrs,
            "num_states": self.num_states,
            "num_events": self.num_events,
            "errors": [
                {"kind": e.kind, "message": e.message,
                 "schedule": e.schedule}
                for e in self.errors
            ],
            "limit_hit": self.limit_hit,
            "exhausted": self.exhausted,
            "elapsed": self.elapsed,
            "extra": {k: v for k, v in self.extra.items()
                      if isinstance(v, (int, float, str, bool))},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExplorationStats":
        """Inverse of :meth:`to_dict` (modulo non-scalar ``extra``
        values) — used by the campaign checkpoint store to resume runs."""
        return cls(
            program_name=payload["program"],
            explorer_name=payload["explorer"],
            num_schedules=payload.get("num_schedules", 0),
            num_complete=payload.get("num_complete", 0),
            num_pruned=payload.get("num_pruned", 0),
            num_hbrs=payload.get("num_hbrs", 0),
            num_lazy_hbrs=payload.get("num_lazy_hbrs", 0),
            num_states=payload.get("num_states", 0),
            num_events=payload.get("num_events", 0),
            errors=[
                ErrorFinding(e["kind"], e["message"], list(e["schedule"]))
                for e in payload.get("errors", [])
            ],
            limit_hit=payload.get("limit_hit", False),
            exhausted=payload.get("exhausted", False),
            elapsed=payload.get("elapsed", 0.0),
            extra=dict(payload.get("extra", {})),
        )


class Explorer:
    """Base class: bookkeeping shared by every strategy."""

    name = "base"

    #: Build fast-replay executors (no Event materialisation, no trace
    #: list, no ``describe_state``).  Explorers that only consume
    #: fingerprints/state hashes/schedules keep the default; strategies
    #: that inspect the trace (DPOR and descendants) override to False.
    #: Instances may flip the attribute before running — the equivalence
    #: tests do — since executors read it at construction time.
    fast_replay = True

    def __init__(
        self,
        program: Program,
        limits: Optional[ExplorationLimits] = None,
    ) -> None:
        self.program = program
        self.limits = limits or ExplorationLimits()
        self._hbr_fps: Set[int] = set()
        self._lazy_fps: Set[int] = set()
        self._state_hashes: Set[int] = set()
        self._error_kinds: Set[Tuple[str, str]] = set()
        self.stats = ExplorationStats(program.name, self.name)
        self._deadline: Optional[float] = None

    # -- hooks for subclasses ----------------------------------------------
    def _new_executor(self) -> Executor:
        return Executor(
            self.program,
            max_events=self.limits.max_events_per_schedule,
            fast_replay=self.fast_replay,
        )

    def _record_terminal(self, result: TraceResult) -> None:
        """Account for one completed (terminal) execution."""
        st = self.stats
        st.num_complete += 1
        self._hbr_fps.add(result.hbr_fp)
        self._lazy_fps.add(result.lazy_fp)
        self._state_hashes.add(result.state_hash)
        st.num_hbrs = len(self._hbr_fps)
        st.num_lazy_hbrs = len(self._lazy_fps)
        st.num_states = len(self._state_hashes)
        if result.error is not None:
            self._record_error(result.error, result.schedule)

    def _record_error(self, error: GuestError, schedule: List[int]) -> None:
        key = (type(error).__name__, str(error))
        if key not in self._error_kinds:
            self._error_kinds.add(key)
            self.stats.errors.append(
                ErrorFinding(key[0], key[1], list(schedule))
            )

    def _schedule_started(self) -> None:
        self.stats.num_schedules += 1

    def _budget_exceeded(self) -> bool:
        if self.stats.num_schedules >= self.limits.max_schedules:
            self.stats.limit_hit = True
            return True
        if self._deadline is not None and time.monotonic() > self._deadline:
            self.stats.limit_hit = True
            return True
        return False

    # -- template method ------------------------------------------------------
    def run(self) -> ExplorationStats:
        start = time.monotonic()
        if self.limits.max_seconds is not None:
            self._deadline = start + self.limits.max_seconds
        try:
            self._explore()
        finally:
            self.stats.elapsed = time.monotonic() - start
        return self.stats

    def _explore(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
