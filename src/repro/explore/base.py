"""Explorer framework: limits, statistics and the base class.

An explorer enumerates schedules of one program.  All concrete
explorers are *stateless* in the SCT sense: each schedule is executed
against a freshly built program instance, replaying the prefix of
thread choices that leads to the branch point (the standard architecture
of Verisoft/CHESS-style tools, which cannot checkpoint states).

Statistics mirror the quantities of the paper's evaluation: the number
of schedules executed, and the numbers of distinct terminal HBRs,
terminal lazy HBRs and final states among completed schedules.  The
paper's inequality

    #states <= #lazy HBRs <= #HBRs <= #schedules

is checked by :meth:`ExplorationStats.verify_inequality` (and enforced
in the integration tests).

Beyond the counts, the statistics carry the underlying fingerprint
*sets* (``hbr_fps``, ``lazy_fps``, ``state_hashes``).  Sets — unlike
counts — merge: :meth:`ExplorationStats.merge` deterministically
combines the results of disjoint exploration shards (see
:meth:`repro.explore.frontier.Frontier.split`) into the statistics one
unsplit run would have produced.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..errors import GuestError
from ..runtime.executor import Executor
from ..runtime.program import Program
from ..runtime.trace import TraceResult

DEFAULT_SCHEDULE_LIMIT = 100_000

#: Default memory budget of the prefix snapshot tree (see
#: :mod:`repro.explore.snapshots`).  Deliberately small: depth-first
#: exploration only ever resumes from the branch points of the current
#: search spine (LIFO locality), so a few MiB keep the hit rate at
#: ~100% while bounding both resident memory and the weight the
#: cached snapshots add to full GC passes — larger budgets measured
#: *slower* on the bench suite.
DEFAULT_SNAPSHOT_BUDGET_BYTES = 4 << 20

#: A mid-schedule wall-clock deadline check every scheduling point would
#: be noise on the fast replay path; every N points bounds the overrun
#: of one long schedule to N steps while keeping the check invisible in
#: the profile.
DEADLINE_CHECK_EVERY = 32


@dataclass
class ExplorationLimits:
    """Hard bounds on one exploration."""

    max_schedules: int = DEFAULT_SCHEDULE_LIMIT
    max_seconds: Optional[float] = None
    max_events_per_schedule: int = 20_000
    #: byte budget of the prefix snapshot tree (0 disables snapshot
    #: resume entirely).  Purely a performance knob: results are
    #: byte-identical under any budget, so — unlike the fields above —
    #: it does not participate in checkpoint-compatibility stamps.
    snapshot_budget_bytes: int = DEFAULT_SNAPSHOT_BUDGET_BYTES


@dataclass
class ErrorFinding:
    """One distinct property violation and a schedule reproducing it."""

    kind: str
    message: str
    schedule: List[int]


def _json_safe(value: Any) -> bool:
    """Is ``value`` representable in JSON without loss (scalars plus
    arbitrarily nested lists/dicts of scalars with string keys)?"""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return True
    if isinstance(value, (list, tuple)):
        return all(_json_safe(v) for v in value)
    if isinstance(value, dict):
        return all(
            isinstance(k, str) and _json_safe(v) for k, v in value.items()
        )
    return False


@dataclass
class ExplorationStats:
    """Outcome of one exploration run."""

    program_name: str
    explorer_name: str
    num_schedules: int = 0          #: executions performed (incl. pruned)
    num_complete: int = 0           #: executions that ran to a terminal state
    num_pruned: int = 0             #: executions cut short by caching/sleep sets
    num_hbrs: int = 0               #: distinct terminal (regular) HBRs
    num_lazy_hbrs: int = 0          #: distinct terminal lazy HBRs
    num_states: int = 0             #: distinct terminal program states
    num_events: int = 0             #: total events executed
    errors: List[ErrorFinding] = field(default_factory=list)
    limit_hit: bool = False         #: stopped by a limit, not exhaustion
    exhausted: bool = False         #: the full reduced state space was covered
    elapsed: float = 0.0
    extra: Dict[str, Any] = field(default_factory=dict)
    #: the distinct-fingerprint sets behind the ``num_*`` counts.
    #: Serialized (sorted) by :meth:`to_dict` so campaign shards can be
    #: union-merged instead of merely summed.
    hbr_fps: Set[int] = field(default_factory=set)
    lazy_fps: Set[int] = field(default_factory=set)
    state_hashes: Set[int] = field(default_factory=set)

    def verify_inequality(self) -> None:
        """Assert the paper's Section 3 inequality chain."""
        if not (
            self.num_states <= self.num_lazy_hbrs <= self.num_hbrs
            <= self.num_schedules
        ):
            raise AssertionError(
                f"inequality violated for {self.program_name} / "
                f"{self.explorer_name}: states={self.num_states} "
                f"lazy={self.num_lazy_hbrs} hbrs={self.num_hbrs} "
                f"schedules={self.num_schedules}"
            )

    def summary(self) -> str:
        mark = "!" if self.limit_hit else ("*" if self.exhausted else "")
        return (
            f"{self.program_name:<28} {self.explorer_name:<14} "
            f"sched={self.num_schedules:<7} hbrs={self.num_hbrs:<7} "
            f"lazy={self.num_lazy_hbrs:<7} states={self.num_states:<7} "
            f"errors={len(self.errors)} {mark}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form, for persisting experiment results.

        ``extra`` values that are JSON-safe (scalars and nested
        lists/dicts of scalars) round-trip faithfully; anything else
        (arbitrary objects) is dropped.  The fingerprint sets are
        emitted sorted, so equal sets serialize identically.
        """
        return {
            "program": self.program_name,
            "explorer": self.explorer_name,
            "num_schedules": self.num_schedules,
            "num_complete": self.num_complete,
            "num_pruned": self.num_pruned,
            "num_hbrs": self.num_hbrs,
            "num_lazy_hbrs": self.num_lazy_hbrs,
            "num_states": self.num_states,
            "num_events": self.num_events,
            "errors": [
                {"kind": e.kind, "message": e.message,
                 "schedule": e.schedule}
                for e in self.errors
            ],
            "limit_hit": self.limit_hit,
            "exhausted": self.exhausted,
            "elapsed": self.elapsed,
            "extra": {k: v for k, v in self.extra.items()
                      if _json_safe(v)},
            "hbr_fps": sorted(self.hbr_fps),
            "lazy_fps": sorted(self.lazy_fps),
            "state_hashes": sorted(self.state_hashes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExplorationStats":
        """Inverse of :meth:`to_dict` (modulo non-JSON-safe ``extra``
        values) — used by the campaign checkpoint store to resume runs."""
        return cls(
            program_name=payload["program"],
            explorer_name=payload["explorer"],
            num_schedules=payload.get("num_schedules", 0),
            num_complete=payload.get("num_complete", 0),
            num_pruned=payload.get("num_pruned", 0),
            num_hbrs=payload.get("num_hbrs", 0),
            num_lazy_hbrs=payload.get("num_lazy_hbrs", 0),
            num_states=payload.get("num_states", 0),
            num_events=payload.get("num_events", 0),
            errors=[
                ErrorFinding(e["kind"], e["message"], list(e["schedule"]))
                for e in payload.get("errors", [])
            ],
            limit_hit=payload.get("limit_hit", False),
            exhausted=payload.get("exhausted", False),
            elapsed=payload.get("elapsed", 0.0),
            extra=dict(payload.get("extra", {})),
            hbr_fps=set(payload.get("hbr_fps", ())),
            lazy_fps=set(payload.get("lazy_fps", ())),
            state_hashes=set(payload.get("state_hashes", ())),
        )

    def has_consistent_sets(self) -> bool:
        """Do the fingerprint sets back the counts?  False for legacy
        payloads that carried counts only — those cannot be merged."""
        return (
            self.num_hbrs == len(self.hbr_fps)
            and self.num_lazy_hbrs == len(self.lazy_fps)
            and self.num_states == len(self.state_hashes)
        )

    def merge(self, other: "ExplorationStats") -> None:
        """Union-merge ``other`` into ``self`` (in place).

        Both sides must carry set payloads consistent with their counts
        (:meth:`has_consistent_sets`); additive counters sum, the
        fingerprint/error *sets* union, and the ``num_*`` distinct
        counts are recomputed from the merged sets — so merging the
        results of disjoint shards reproduces exactly the distinct
        counts of the equivalent unsplit run.  Deterministic for a
        fixed merge order.
        """
        if not (self.has_consistent_sets() and other.has_consistent_sets()):
            raise ValueError(
                "cannot merge ExplorationStats without consistent "
                "fingerprint-set payloads (legacy counts-only data?)"
            )
        self.num_schedules += other.num_schedules
        self.num_complete += other.num_complete
        self.num_pruned += other.num_pruned
        self.num_events += other.num_events
        self.hbr_fps |= other.hbr_fps
        self.lazy_fps |= other.lazy_fps
        self.state_hashes |= other.state_hashes
        self.num_hbrs = len(self.hbr_fps)
        self.num_lazy_hbrs = len(self.lazy_fps)
        self.num_states = len(self.state_hashes)
        seen = {(e.kind, e.message) for e in self.errors}
        for e in other.errors:
            if (e.kind, e.message) not in seen:
                seen.add((e.kind, e.message))
                self.errors.append(
                    ErrorFinding(e.kind, e.message, list(e.schedule))
                )
        self.limit_hit = self.limit_hit or other.limit_hit
        self.exhausted = self.exhausted and other.exhausted
        self.elapsed += other.elapsed
        for key, value in other.extra.items():
            mine = self.extra.get(key)
            if (isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and isinstance(mine, (int, float))
                    and not isinstance(mine, bool)):
                self.extra[key] = mine + value
            elif key not in self.extra:
                self.extra[key] = value


class Explorer:
    """Base class: bookkeeping shared by every strategy."""

    name = "base"

    #: Build fast-replay executors (no Event materialisation, no trace
    #: list, no ``describe_state``).  Explorers that only consume
    #: fingerprints/state hashes/schedules keep the default; strategies
    #: that inspect the trace (DPOR and descendants) override to False.
    #: Instances may flip the attribute before running — the equivalence
    #: tests do — since executors read it at construction time.
    fast_replay = True

    #: Clock-engine backend for the executors this explorer builds
    #: (``"ref"``/``"accel"``/``None`` = auto; see
    #: :mod:`repro.core.engines`).  Set by ``make_explorer(engine=...)``
    #: or directly on the instance before :meth:`run`.
    engine: Optional[str] = None

    def __init__(
        self,
        program: Program,
        limits: Optional[ExplorationLimits] = None,
    ) -> None:
        self.program = program
        self.limits = limits or ExplorationLimits()
        self._error_kinds: Set[Tuple[str, str]] = set()
        self.stats = ExplorationStats(program.name, self.name)
        #: prefix snapshot cache (see :mod:`repro.explore.snapshots`);
        #: installed by the explorers that replay prefixes (the kernel
        #: family and DPOR) when the limits grant a budget.  When set,
        #: executors are built with tape recording enabled.
        self.snapshot_tree = None
        self._deadline: Optional[float] = None
        #: wall-clock already consumed by a restored run; counted
        #: against ``max_seconds`` and added to the final ``elapsed``
        self._elapsed_base: float = 0.0
        #: periodic checkpoint callback (see :meth:`set_checkpoint`);
        #: only explorers with a ``snapshot`` method honour it
        self._checkpoint_fn: Optional[Callable[[Dict[str, Any]], None]] = None
        self._checkpoint_interval: float = 2.0
        self._last_checkpoint: float = 0.0
        self._points_since_deadline_check = 0
        #: between-schedules control callback (see :meth:`set_control`);
        #: unlike checkpoints it runs at EVERY schedule boundary — the
        #: callback does its own rate limiting — so callers with
        #: deterministic triggers (fault injection, steal commands at a
        #: chosen schedule count) fire at exact points
        self._control_fn: Optional[Callable[["Explorer"], None]] = None
        #: cooperative stop flag (see :meth:`request_stop`)
        self._stop_requested = False

    # -- views kept for tests and analysis tooling --------------------------
    @property
    def _hbr_fps(self) -> Set[int]:
        return self.stats.hbr_fps

    @property
    def _lazy_fps(self) -> Set[int]:
        return self.stats.lazy_fps

    @property
    def _state_hashes(self) -> Set[int]:
        return self.stats.state_hashes

    # -- hooks for subclasses ----------------------------------------------
    def _new_executor(self) -> Executor:
        return Executor(
            self.program,
            max_events=self.limits.max_events_per_schedule,
            fast_replay=self.fast_replay,
            snapshots=self.snapshot_tree is not None,
            engine=self.engine,
        )

    def _record_terminal(self, result: TraceResult) -> None:
        """Account for one completed (terminal) execution."""
        st = self.stats
        st.num_complete += 1
        st.hbr_fps.add(result.hbr_fp)
        st.lazy_fps.add(result.lazy_fp)
        st.state_hashes.add(result.state_hash)
        st.num_hbrs = len(st.hbr_fps)
        st.num_lazy_hbrs = len(st.lazy_fps)
        st.num_states = len(st.state_hashes)
        if result.error is not None:
            self._record_error(result.error, result.schedule)

    def _record_error(self, error: GuestError, schedule: List[int]) -> None:
        key = (type(error).__name__, str(error))
        if key not in self._error_kinds:
            self._error_kinds.add(key)
            self.stats.errors.append(
                ErrorFinding(key[0], key[1], list(schedule))
            )

    def _schedule_started(self) -> None:
        self.stats.num_schedules += 1

    def _budget_exceeded(self) -> bool:
        # every explorer loop probes the budget between schedules, so
        # this is the one uniform between-schedules point: run the
        # control callback (heartbeats, steal commands, fault
        # injection) first — it may request the stop honoured below
        self._maybe_control()
        if self._stop_requested:
            self.stats.limit_hit = True
            return True
        if self.stats.num_schedules >= self.limits.max_schedules:
            self.stats.limit_hit = True
            return True
        if self._deadline is not None and time.monotonic() > self._deadline:
            self.stats.limit_hit = True
            return True
        return False

    def _deadline_exceeded_midschedule(self) -> bool:
        """Cheap per-scheduling-point deadline probe.

        ``_budget_exceeded`` only runs between schedules, so one long
        schedule used to overrun ``max_seconds`` unboundedly.  Explorers
        call this at every scheduling point; it samples the clock every
        :data:`DEADLINE_CHECK_EVERY` points and flags ``limit_hit`` when
        the deadline has passed, letting the caller abandon the
        in-flight schedule.
        """
        if self._deadline is None:
            return False
        self._points_since_deadline_check += 1
        if self._points_since_deadline_check < DEADLINE_CHECK_EVERY:
            return False
        self._points_since_deadline_check = 0
        if time.monotonic() > self._deadline:
            self.stats.limit_hit = True
            return True
        return False

    def _restore_stats(self, payload: Optional[Dict[str, Any]]) -> None:
        """Shared restore() plumbing for resumable explorers: rebuild
        the statistics (and derived error-dedup set) from a snapshot
        payload and charge the restored elapsed time against this
        run's wall-clock budget.  The limit/exhaustion flags are
        cleared — a snapshot taken at a budget boundary resumes
        cleanly under a laxer budget, and ``run()`` re-derives them."""
        if payload is None:
            return
        self.stats = ExplorationStats.from_dict(payload)
        self.stats.program_name = self.program.name
        self.stats.explorer_name = self.name
        self._error_kinds = {
            (e.kind, e.message) for e in self.stats.errors
        }
        self._elapsed_base = self.stats.elapsed
        self.stats.limit_hit = False
        self.stats.exhausted = False

    # -- checkpointing ------------------------------------------------------
    def set_checkpoint(
        self,
        fn: Callable[[Dict[str, Any]], None],
        interval: float = 2.0,
    ) -> None:
        """Install a periodic checkpoint callback.

        Explorers that support serialization (those with a
        ``snapshot()`` method — the kernel family and DPOR) call
        ``fn(self.snapshot())`` between schedules, at most every
        ``interval`` seconds.  Explorers without snapshot support
        silently ignore the callback.
        """
        self._checkpoint_fn = fn
        self._checkpoint_interval = interval

    def _maybe_checkpoint(self) -> None:
        if self._checkpoint_fn is None:
            return
        now = time.monotonic()
        if now - self._last_checkpoint < self._checkpoint_interval:
            return
        self._last_checkpoint = now
        self._checkpoint_fn(self.snapshot())  # type: ignore[attr-defined]

    # -- external control ---------------------------------------------------
    def set_control(self, fn: Callable[["Explorer"], None]) -> None:
        """Install a between-schedules control callback.

        ``fn(self)`` runs at every schedule boundary of explorers that
        support it (the kernel family and DPOR — the same set that
        honours checkpoints).  The distributed campaign worker uses it
        to heartbeat its lease, answer steal commands by splitting the
        live frontier, and let the chaos harness fire deterministic
        faults at exact schedule counts.  The callback may call
        :meth:`request_stop` to end the run cooperatively.
        """
        self._control_fn = fn

    def _maybe_control(self) -> None:
        if self._control_fn is not None:
            self._control_fn(self)

    def request_stop(self) -> None:
        """Ask the run to stop at the next schedule boundary.

        The run ends as if a budget limit fired (``limit_hit`` set,
        frontier preserved), so a ``snapshot()`` taken afterwards
        resumes exactly where the stop landed.  Used by the
        distributed worker to abandon a task whose lease the
        coordinator revoked.
        """
        self._stop_requested = True

    # -- template method ------------------------------------------------------
    def run(self) -> ExplorationStats:
        start = time.monotonic()
        if self.limits.max_seconds is not None:
            self._deadline = start + (
                self.limits.max_seconds - self._elapsed_base
            )
        self._last_checkpoint = start
        try:
            self._explore()
        finally:
            self.stats.elapsed = (
                self._elapsed_base + time.monotonic() - start
            )
        return self.stats

    def _explore(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
