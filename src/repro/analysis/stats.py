"""Aggregate statistics over experiment results — the numbers quoted in
the paper's Section 3 (below-diagonal counts, redundancy percentages)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class ScatterPoint:
    """One benchmark's position on a log-log scatter plot."""

    bench_id: int
    name: str
    x: int
    y: int
    limit_hit: bool = False

    @property
    def below_diagonal(self) -> bool:
        return self.y < self.x


def below_diagonal(points: Sequence[ScatterPoint]) -> List[ScatterPoint]:
    """Benchmarks strictly below the y = x diagonal."""
    return [p for p in points if p.below_diagonal]


def redundancy_summary(points: Sequence[ScatterPoint]) -> Dict[str, float]:
    """Figure 2 aggregate: among below-diagonal benchmarks, how many of
    the unique HBRs (x) were redundant according to the lazy HBR (y)?

    The paper reports 33/79 benchmarks below the diagonal and 910,007
    (80%) of their unique HBRs redundant.
    """
    below = below_diagonal(points)
    total_x = sum(p.x for p in below)
    total_y = sum(p.y for p in below)
    redundant = total_x - total_y
    return {
        "num_benchmarks": float(len(points)),
        "num_below_diagonal": float(len(below)),
        "total_hbrs_below": float(total_x),
        "redundant_hbrs": float(redundant),
        "redundant_pct": 100.0 * redundant / total_x if total_x else 0.0,
    }


def caching_gain_summary(points: Sequence[ScatterPoint]) -> Dict[str, float]:
    """Figure 3 aggregate: benchmarks where lazy HBR caching (y) explored
    *more* lazy HBRs than regular HBR caching (x) within the budget.

    Note the orientation: in Figure 3 "below the diagonal" in the paper
    means lazy caching explored more (their y axis is lazy caching);
    here a gain is ``y > x``.  The paper reports 18/79 gaining
    benchmarks and +8,969 (84%) more lazy HBRs across them.
    """
    gaining = [p for p in points if p.y > x_safe(p)]
    base = sum(x_safe(p) for p in gaining)
    extra = sum(p.y - x_safe(p) for p in gaining)
    return {
        "num_benchmarks": float(len(points)),
        "num_gaining": float(len(gaining)),
        "base_lazy_hbrs": float(base),
        "extra_lazy_hbrs": float(extra),
        "extra_pct": 100.0 * extra / base if base else 0.0,
    }


def x_safe(p: ScatterPoint) -> int:
    return p.x if p.x > 0 else 0


def inequality_rows(results) -> List[Tuple[int, str, int, int, int, int, bool]]:
    """Rows (id, name, states, lazy, hbrs, schedules, ok) for the
    Section 3 inequality table."""
    rows = []
    for bench_id, name, stats in results:
        ok = (
            stats.num_states <= stats.num_lazy_hbrs
            <= stats.num_hbrs <= stats.num_schedules
        )
        rows.append(
            (bench_id, name, stats.num_states, stats.num_lazy_hbrs,
             stats.num_hbrs, stats.num_schedules, ok)
        )
    return rows
