"""ASCII log-log scatter plots — terminal renderings of the paper's
Figures 2 and 3.

Each point is printed as its benchmark id (mod 10 for single-character
cells, with a legend for collisions), the diagonal is drawn with ``/``,
and axes are decade-labelled, mirroring the matplotlib figures in the
paper closely enough to eyeball the below-diagonal mass.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .stats import ScatterPoint


def _log_pos(v: int, vmax: float, cells: int) -> int:
    """Map a value >= 1 onto [0, cells-1] on a log scale."""
    v = max(v, 1)
    if vmax <= 1:
        return 0
    frac = math.log10(v) / math.log10(vmax)
    return min(cells - 1, int(round(frac * (cells - 1))))


def render_scatter(
    points: Sequence[ScatterPoint],
    xlabel: str,
    ylabel: str,
    width: int = 64,
    height: int = 24,
    diagonal: bool = True,
) -> str:
    """Render points on a log-log grid with the y=x diagonal."""
    vmax = max([p.x for p in points] + [p.y for p in points] + [10])
    grid = [[" "] * width for _ in range(height)]

    if diagonal:
        for c in range(min(width, height * width // width)):
            r = int(round(c * (height - 1) / (width - 1)))
            grid[height - 1 - r][c] = "/"

    collisions: List[str] = []
    for p in points:
        col = _log_pos(p.x, vmax, width)
        row = height - 1 - _log_pos(p.y, vmax, height)
        mark = str(p.bench_id % 10)
        cell = grid[row][col]
        if cell not in (" ", "/"):
            collisions.append(f"({p.bench_id} overlaps at col {col})")
        grid[row][col] = mark

    lines = []
    lines.append(f"  {ylabel}")
    for r, row in enumerate(grid):
        decade = ""
        # left axis: decade labels at the rows corresponding to powers of 10
        level = (height - 1 - r) / (height - 1) * math.log10(vmax)
        if abs(level - round(level)) < (math.log10(vmax) / (height - 1)) / 2:
            decade = f"1e{int(round(level))}"
        lines.append(f"{decade:>6} |{''.join(row)}")
    lines.append(f"{'':>6} +{'-' * width}")
    # bottom axis decade labels
    axis = [" "] * width
    nd = int(math.floor(math.log10(vmax)))
    for d in range(nd + 1):
        c = _log_pos(10 ** d, vmax, width)
        label = f"1e{d}"
        for i, ch in enumerate(label):
            if c + i < width:
                axis[c + i] = ch
    lines.append(f"{'':>7}{''.join(axis)}")
    lines.append(f"{'':>7}{xlabel}")
    lines.append("")
    lines.append("  points are benchmark ids mod 10; '/' is the y=x diagonal")
    return "\n".join(lines)


def scatter_csv(points: Sequence[ScatterPoint]) -> str:
    """CSV form of the scatter data (id,name,x,y,limit_hit)."""
    rows = ["bench_id,name,x,y,limit_hit"]
    for p in points:
        rows.append(f"{p.bench_id},{p.name},{p.x},{p.y},{int(p.limit_hit)}")
    return "\n".join(rows)
