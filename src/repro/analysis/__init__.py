"""Experiment harnesses regenerating the paper's figures and tables."""

from .races import (
    Race,
    RaceReport,
    find_races,
    race_summary,
    races_in_trace,
    sync_oids_of,
)
from .runner import (
    DEFAULT_LIMIT,
    Figure2Row,
    Figure3Row,
    InequalityRow,
    figure2_rows_from_cells,
    figure3_rows_from_cells,
    run_figure2,
    run_figure3,
    run_inequality_table,
)
from .report import figure2_report, figure3_report, inequality_report
from .scatter import render_scatter, scatter_csv
from .stats import (
    ScatterPoint,
    below_diagonal,
    caching_gain_summary,
    redundancy_summary,
)

__all__ = [
    "DEFAULT_LIMIT",
    "Figure2Row",
    "Figure3Row",
    "InequalityRow",
    "Race",
    "RaceReport",
    "ScatterPoint",
    "below_diagonal",
    "caching_gain_summary",
    "figure2_report",
    "figure2_rows_from_cells",
    "figure3_report",
    "figure3_rows_from_cells",
    "find_races",
    "inequality_report",
    "race_summary",
    "races_in_trace",
    "redundancy_summary",
    "render_scatter",
    "run_figure2",
    "run_figure3",
    "run_inequality_table",
    "scatter_csv",
    "sync_oids_of",
]
