"""Happens-before data-race detection.

A *data race* is a pair of accesses to the same plain shared location,
at least one a write, by different threads, unordered by the
**synchronisation happens-before** relation — program order plus edges
through synchronisation objects only (mutexes, rwlocks, condition
variables, semaphores, barriers, atomics, thread spawn/join).

Note this is a *different* relation from the paper's HBR: the paper's
condition (b) adds an edge for every conflicting data access, which by
construction totally orders all conflicts within a schedule (that is
what makes it identify equivalence classes).  Race detection instead
asks whether the *synchronisation* in the program orders the accesses;
the clocks are recomputed here, offline, from the recorded trace.

Combined with DPOR exploration (:func:`find_races`), detection is
systematic: one representative per HBR class suffices, because whether
two accesses are sync-ordered is a property of the class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.events import DATA_KINDS, Event, MODIFYING_KINDS, OpKind
from ..core.vector_clock import VectorClock, tuple_leq
from ..explore.base import ExplorationLimits
from ..explore.dpor import DPORExplorer
from ..runtime.atomic import AtomicInt
from ..runtime.barrier import Barrier
from ..runtime.channel import Channel
from ..runtime.condvar import CondVar
from ..runtime.future import Future
from ..runtime.mutex import Mutex
from ..runtime.objects import ObjectRegistry, ThreadHandle
from ..runtime.program import Program
from ..runtime.rwlock import RWLock
from ..runtime.semaphore import Semaphore
from ..runtime.trace import TraceResult

#: Kinds that constitute plain data accesses (registry-derived, so a
#: new data primitive is race-analyzed without edits here).
_DATA_KINDS = DATA_KINDS

#: Thread-lifecycle kinds — always synchronisation.
_LIFECYCLE_KINDS = frozenset({OpKind.SPAWN, OpKind.EXIT, OpKind.JOIN})

_SYNC_TYPES = (Mutex, CondVar, Semaphore, Barrier, RWLock, AtomicInt,
               ThreadHandle, Channel, Future)


def sync_oids_of(registry: ObjectRegistry) -> Set[int]:
    """Object ids whose accesses create synchronisation edges."""
    return {o.oid for o in registry.objects if isinstance(o, _SYNC_TYPES)}


@dataclass(frozen=True)
class Race:
    """One sync-unordered conflicting access pair, identified by thread
    and per-thread operation index (stable across schedules)."""

    oid: int
    key: object
    first: Tuple[int, int, int]    # (tid, tindex, kind)
    second: Tuple[int, int, int]

    def describe(self, names: Optional[Dict[int, str]] = None) -> str:
        oname = (names or {}).get(self.oid, f"object {self.oid}")
        loc = f"{oname}" + (f"[{self.key!r}]" if self.key is not None else "")

        def side(s):
            return f"T{s[0]}.{s[1]} {OpKind(s[2]).name}"

        return f"race on {loc}: {side(self.first)} || {side(self.second)}"


def _sync_clocks(events: Sequence[Event], sync_oids: Set[int]) -> List[Tuple[int, ...]]:
    """Vector clocks of every event under sync-only happens-before."""
    thread_clocks: Dict[int, VectorClock] = {}
    access: Dict[Tuple[int, object], VectorClock] = {}
    modify: Dict[Tuple[int, object], VectorClock] = {}
    spawn_clock: Dict[int, Tuple[int, ...]] = {}  # child tid -> spawn clock
    out: List[Tuple[int, ...]] = []

    for e in events:
        tc = thread_clocks.get(e.tid)
        if tc is None:
            tc = VectorClock(e.tid + 1)
            thread_clocks[e.tid] = tc
            if e.tid in spawn_clock:
                tc.join_tuple_inplace(spawn_clock[e.tid])

        locs = []
        # Thread-lifecycle events always synchronise: their target is a
        # ThreadHandle allocated by the executor (not present in the
        # builder registry sync_oids are derived from).
        is_sync = e.oid in sync_oids or e.kind in _LIFECYCLE_KINDS
        if e.oid >= 0 and is_sync:
            locs.append(((e.oid, e.key), e.kind in MODIFYING_KINDS))
        if e.released_mutex_oid is not None:
            # WAIT behaves as an unlock of its paired mutex
            locs.append(((e.released_mutex_oid, None), True))

        for loc, modifying in locs:
            prev = access.get(loc) if modifying else modify.get(loc)
            if prev is not None:
                tc.join_inplace(prev)

        tc.tick(e.tid)
        snap = tc.snapshot()
        out.append(snap)

        for loc, modifying in locs:
            for table, update in ((access, True), (modify, modifying)):
                if update:
                    vc = table.get(loc)
                    if vc is None:
                        vc = VectorClock(len(snap))
                        table[loc] = vc
                    vc.join_tuple_inplace(snap)

        if e.kind == OpKind.SPAWN and isinstance(e.value, int):
            spawn_clock[e.value] = snap
    return out


def races_in_trace(result: TraceResult, sync_oids: Set[int]) -> List[Race]:
    """All sync-unordered conflicting data-access pairs in one schedule."""
    clocks = _sync_clocks(result.events, sync_oids)
    by_loc: Dict[Tuple[int, object], List[Tuple[Event, Tuple[int, ...]]]] = {}
    for e, c in zip(result.events, clocks):
        if e.kind in _DATA_KINDS and e.oid >= 0 and e.oid not in sync_oids:
            by_loc.setdefault((e.oid, e.key), []).append((e, c))

    races: List[Race] = []
    for (oid, key), accesses in by_loc.items():
        for i, (a, ca) in enumerate(accesses):
            for b, cb in accesses[i + 1:]:
                if a.tid == b.tid:
                    continue
                if a.kind not in MODIFYING_KINDS and \
                        b.kind not in MODIFYING_KINDS:
                    continue
                # a precedes b in the schedule: they race iff the sync
                # relation does not order a before b
                if not tuple_leq(ca, cb):
                    first, second = sorted(
                        [(a.tid, a.tindex, int(a.kind)),
                         (b.tid, b.tindex, int(b.kind))]
                    )
                    races.append(Race(oid, key, first, second))
    return races


@dataclass
class RaceReport:
    """Outcome of a systematic race hunt."""

    program_name: str
    races: List[Race]
    schedules_explored: int
    exhausted: bool
    witness: Dict[Race, List[int]]

    @property
    def race_free(self) -> bool:
        return not self.races


def find_races(
    program: Program,
    limits: Optional[ExplorationLimits] = None,
) -> RaceReport:
    """Explore ``program`` with DPOR and collect every distinct race,
    each with a witness schedule."""
    limits = limits or ExplorationLimits(max_schedules=10_000)
    sync = sync_oids_of(program.instantiate().registry)

    seen: Set[Race] = set()
    order: List[Race] = []
    witness: Dict[Race, List[int]] = {}

    class _RaceCollectingDPOR(DPORExplorer):
        def _record_terminal(self, result: TraceResult) -> None:
            super()._record_terminal(result)
            for race in races_in_trace(result, sync):
                if race not in seen:
                    seen.add(race)
                    order.append(race)
                    witness[race] = list(result.schedule)

    stats = _RaceCollectingDPOR(program, limits).run()
    return RaceReport(
        program_name=program.name,
        races=order,
        schedules_explored=stats.num_schedules,
        exhausted=stats.exhausted,
        witness=witness,
    )


def race_summary(report: RaceReport,
                 names: Optional[Dict[int, str]] = None) -> str:
    """Human-readable multi-line summary of a race hunt."""
    lines = [
        f"{report.program_name}: "
        f"{'race-free' if report.race_free else f'{len(report.races)} race(s)'} "
        f"({report.schedules_explored} schedules, "
        f"{'exhaustive' if report.exhausted else 'budget-limited'})"
    ]
    for race in report.races:
        lines.append(f"  {race.describe(names)}")
        lines.append(f"    witness schedule: {report.witness[race]}")
    return "\n".join(lines)
