"""Markdown report generation for EXPERIMENTS.md."""

from __future__ import annotations

from typing import List, Sequence

from .runner import Figure2Row, Figure3Row, InequalityRow
from .scatter import render_scatter
from .stats import caching_gain_summary, redundancy_summary


def figure2_report(rows: Sequence[Figure2Row], schedule_limit: int) -> str:
    points = [r.as_point() for r in rows]
    summary = redundancy_summary(points)
    out: List[str] = []
    out.append("## Figure 2 — #HBRs vs #lazy HBRs under DPOR")
    out.append("")
    out.append(f"Schedule limit per benchmark: {schedule_limit:,} "
               "(paper: 100,000).")
    out.append("")
    out.append("```")
    out.append(render_scatter(points, "#HBRs", "#lazy HBRs"))
    out.append("```")
    out.append("")
    out.append(
        f"- benchmarks below the diagonal: "
        f"**{int(summary['num_below_diagonal'])} / {len(rows)}** "
        f"(paper: 33 / 79)"
    )
    out.append(
        f"- redundant HBRs across those benchmarks: "
        f"**{int(summary['redundant_hbrs']):,} "
        f"({summary['redundant_pct']:.0f}%)** (paper: 910,007 (80%))"
    )
    out.append("")
    out.append("| id | benchmark | schedules | #HBRs | #lazy HBRs | #states | limit |")
    out.append("|---:|---|---:|---:|---:|---:|:--|")
    for r in rows:
        out.append(
            f"| {r.bench_id} | {r.name} | {r.num_schedules} | "
            f"{r.num_hbrs} | {r.num_lazy_hbrs} | {r.num_states} | "
            f"{'hit' if r.limit_hit else 'done'} |"
        )
    return "\n".join(out)


def figure3_report(rows: Sequence[Figure3Row], schedule_limit: int) -> str:
    points = [r.as_point() for r in rows]
    summary = caching_gain_summary(points)
    out: List[str] = []
    out.append("## Figure 3 — lazy HBRs explored: HBR caching vs lazy HBR caching")
    out.append("")
    out.append(f"Schedule limit per benchmark: {schedule_limit:,} "
               "(paper: 100,000).")
    out.append("")
    out.append("```")
    out.append(render_scatter(
        points, "HBR caching (#lazy HBRs)", "lazy HBR caching (#lazy HBRs)"
    ))
    out.append("```")
    out.append("")
    out.append(
        f"- benchmarks where lazy caching explored more lazy HBRs: "
        f"**{int(summary['num_gaining'])} / {len(rows)}** (paper: 18 / 79)"
    )
    out.append(
        f"- extra terminal lazy HBRs across those: "
        f"**{int(summary['extra_lazy_hbrs']):,} "
        f"({summary['extra_pct']:.0f}%)** (paper: 8,969 (84%))"
    )
    out.append("")
    out.append("| id | benchmark | HBR caching | lazy HBR caching | limit |")
    out.append("|---:|---|---:|---:|:--|")
    for r in rows:
        out.append(
            f"| {r.bench_id} | {r.name} | {r.lazy_hbrs_regular_caching} | "
            f"{r.lazy_hbrs_lazy_caching} | "
            f"{'hit' if r.limit_hit else 'done'} |"
        )
    return "\n".join(out)


def inequality_report(rows: Sequence[InequalityRow]) -> str:
    out: List[str] = []
    out.append("## Section 3 inequality — #states <= #lazy <= #HBRs <= #schedules")
    out.append("")
    out.append("| id | benchmark | #states | #lazy HBRs | #HBRs | #schedules | holds |")
    out.append("|---:|---|---:|---:|---:|---:|:--|")
    violations = 0
    for r in rows:
        s = r.stats
        ok = (s.num_states <= s.num_lazy_hbrs <= s.num_hbrs
              <= s.num_schedules)
        violations += 0 if ok else 1
        out.append(
            f"| {r.bench_id} | {r.name} | {s.num_states} | "
            f"{s.num_lazy_hbrs} | {s.num_hbrs} | {s.num_schedules} | "
            f"{'yes' if ok else '**NO**'} |"
        )
    out.append("")
    out.append(f"Violations: **{violations}** (must be 0).")
    return "\n".join(out)
