"""Experiment harnesses that regenerate the paper's evaluation.

* :func:`run_figure2` — DPOR over the suite; per benchmark, the number
  of terminal HBRs (x) and terminal lazy HBRs (y) within the schedule
  limit.  The paper found 33/79 benchmarks strictly below the diagonal
  and, among those, 80% of the unique HBRs redundant.
* :func:`run_figure3` — regular vs lazy HBR caching; per benchmark,
  the number of distinct terminal lazy HBRs each explored within the
  schedule limit.  The paper found 18/79 benchmarks where lazy caching
  explored more, by +84% across them.
* :func:`run_inequality_table` — the Section 3 chain
  ``#states <= #lazy HBRs <= #HBRs <= #schedules`` for every benchmark.

All three accept ``jobs``: with ``jobs > 1`` the per-benchmark cells are
sharded across a process pool by the campaign driver
(:mod:`repro.campaign`).  Serial and parallel paths execute the same
cell function (:func:`repro.explore.controller.run_single`), so the rows
they produce are bit-for-bit identical — provided only deterministic
budgets bind: a binding ``seconds_per_benchmark`` wall-clock cap cuts
exploration at a load-dependent point and is not reproducible, serial
*or* parallel.

The paper used a schedule limit of 100,000 on instrumented JVM
executions; the default here is lower because pure-Python execution is
slower, and every counted quantity grows monotonically with the limit
(so diagonal structure is preserved — see EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..campaign.cells import CampaignCell
from ..campaign.runner import run_campaign
from ..campaign.worker import CellResult
from ..explore.base import ExplorationLimits, ExplorationStats
from ..explore.controller import run_single
from ..suite import REGISTRY, all_benchmarks
from ..suite.base import Benchmark
from .stats import ScatterPoint

DEFAULT_LIMIT = 2_000


@dataclass
class Figure2Row:
    bench_id: int
    name: str
    num_schedules: int
    num_hbrs: int
    num_lazy_hbrs: int
    num_states: int
    limit_hit: bool

    def as_point(self) -> ScatterPoint:
        return ScatterPoint(
            self.bench_id, self.name, self.num_hbrs, self.num_lazy_hbrs,
            self.limit_hit,
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Figure2Row":
        return cls(**payload)


@dataclass
class Figure3Row:
    bench_id: int
    name: str
    lazy_hbrs_regular_caching: int
    lazy_hbrs_lazy_caching: int
    schedules_regular: int
    schedules_lazy: int
    limit_hit: bool

    def as_point(self) -> ScatterPoint:
        return ScatterPoint(
            self.bench_id, self.name,
            self.lazy_hbrs_regular_caching, self.lazy_hbrs_lazy_caching,
            self.limit_hit,
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Figure3Row":
        return cls(**payload)


def _limits(schedule_limit: int, seconds: Optional[float]) -> ExplorationLimits:
    return ExplorationLimits(
        max_schedules=schedule_limit, max_seconds=seconds
    )


# ---------------------------------------------------------------------------
# Shared execution: every figure harness is a (benchmark × explorer)
# sub-matrix, executed serially in-process or sharded via the campaign.

def _explore_matrix(
    benchmarks: Sequence[Benchmark],
    explorer_names: Sequence[str],
    limits: ExplorationLimits,
    jobs: int,
    on_stats: Optional[Callable[[int, str, ExplorationStats], None]] = None,
) -> Dict[Tuple[int, str], ExplorationStats]:
    """Run each named explorer on each benchmark; returns stats keyed by
    ``(benchmark position, explorer name)``.

    Suite benchmarks go through :func:`repro.campaign.runner
    .run_campaign` (sharded when ``jobs > 1``); ad-hoc
    :class:`Benchmark` objects that are not in the registry cannot cross
    a process boundary and always run serially in-process.  Both paths
    call the same cell-execution function.
    """
    # duplicates would collapse in the cell work-list (cells are keyed
    # by bench_id); the serial path handles them per-entry
    registry_backed = (
        all(REGISTRY.get(b.bench_id) is b for b in benchmarks)
        and len({b.bench_id for b in benchmarks}) == len(benchmarks)
    )
    stats: Dict[Tuple[int, str], ExplorationStats] = {}
    if not registry_backed:
        for i, b in enumerate(benchmarks):
            for name in explorer_names:
                st = run_single(b.program, name, limits)
                stats[(i, name)] = st
                if on_stats is not None:
                    on_stats(i, name, st)
        return stats

    index_of = {b.bench_id: i for i, b in enumerate(benchmarks)}
    cells = [
        CampaignCell(b.bench_id, name)
        for b in benchmarks for name in explorer_names
    ]

    def consume(result: CellResult) -> None:
        if result.ok and result.stats is not None and on_stats is not None:
            on_stats(
                index_of[result.cell.bench_id], result.cell.explorer,
                result.stats,
            )

    campaign = run_campaign(cells, limits, jobs=jobs, on_result=consume)
    failures = campaign.failures
    if failures:
        first = failures[0]
        raise RuntimeError(
            f"{len(failures)} cell(s) failed; first: "
            f"{first.cell.key}: {first.error}"
        )
    for r in campaign.results:
        stats[(index_of[r.cell.bench_id], r.cell.explorer)] = r.stats
    return stats


def run_figure2(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    schedule_limit: int = DEFAULT_LIMIT,
    seconds_per_benchmark: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> List[Figure2Row]:
    """DPOR with the regular HBR; count terminal HBRs vs lazy HBRs."""
    benchs = list(benchmarks) if benchmarks is not None else all_benchmarks()
    on_stats = (
        (lambda i, name, st: progress(st.summary()))
        if progress is not None else None
    )
    stats = _explore_matrix(
        benchs, ["dpor"], _limits(schedule_limit, seconds_per_benchmark),
        jobs, on_stats,
    )
    return [
        _figure2_row(b, stats[(i, "dpor")]) for i, b in enumerate(benchs)
    ]


def _figure2_row(b: Benchmark, st: ExplorationStats) -> Figure2Row:
    return Figure2Row(
        b.bench_id, b.program.name, st.num_schedules, st.num_hbrs,
        st.num_lazy_hbrs, st.num_states, st.limit_hit,
    )


def run_figure3(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    schedule_limit: int = DEFAULT_LIMIT,
    seconds_per_benchmark: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
    jobs: int = 1,
) -> List[Figure3Row]:
    """Regular vs lazy HBR caching; compare terminal lazy HBRs reached."""
    benchs = list(benchmarks) if benchmarks is not None else all_benchmarks()

    # progress pairs the two cells of a benchmark into one line, however
    # the pool interleaves them
    partial: Dict[int, Dict[str, ExplorationStats]] = {}

    def on_stats(i: int, name: str, st: ExplorationStats) -> None:
        got = partial.setdefault(i, {})
        got[name] = st
        if progress is not None and len(got) == 2:
            progress(
                f"{benchs[i].program.name:<34} "
                f"caching={got['hbr-caching'].num_lazy_hbrs:<6} "
                f"lazy-caching={got['lazy-hbr-caching'].num_lazy_hbrs:<6}"
            )

    stats = _explore_matrix(
        benchs, ["hbr-caching", "lazy-hbr-caching"],
        _limits(schedule_limit, seconds_per_benchmark), jobs, on_stats,
    )
    return [
        _figure3_row(
            b, stats[(i, "hbr-caching")], stats[(i, "lazy-hbr-caching")]
        )
        for i, b in enumerate(benchs)
    ]


def _figure3_row(
    b: Benchmark, regular: ExplorationStats, lazy: ExplorationStats
) -> Figure3Row:
    return Figure3Row(
        b.bench_id, b.program.name,
        regular.num_lazy_hbrs, lazy.num_lazy_hbrs,
        regular.num_schedules, lazy.num_schedules,
        regular.limit_hit or lazy.limit_hit,
    )


@dataclass
class InequalityRow:
    bench_id: int
    name: str
    stats: ExplorationStats

    def to_dict(self) -> dict:
        return {
            "bench_id": self.bench_id,
            "name": self.name,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InequalityRow":
        return cls(
            payload["bench_id"], payload["name"],
            ExplorationStats.from_dict(payload["stats"]),
        )


def run_inequality_table(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    schedule_limit: int = DEFAULT_LIMIT,
    seconds_per_benchmark: Optional[float] = None,
    jobs: int = 1,
) -> List[InequalityRow]:
    """The Section 3 inequality, measured (not assumed) per benchmark."""
    benchs = list(benchmarks) if benchmarks is not None else all_benchmarks()
    stats = _explore_matrix(
        benchs, ["dpor"], _limits(schedule_limit, seconds_per_benchmark),
        jobs,
    )
    return [
        InequalityRow(b.bench_id, b.program.name, stats[(i, "dpor")])
        for i, b in enumerate(benchs)
    ]


# ---------------------------------------------------------------------------
# Figure rows from raw campaign results (for `repro campaign --out`):
# any campaign whose cells cover the needed explorers can be re-read as
# figure data without re-running anything.

def figure2_rows_from_cells(
    results: Sequence[CellResult],
) -> List[Figure2Row]:
    """Figure 2 rows from a campaign's ``dpor`` (seed 0) cells."""
    rows = []
    for r in sorted(results, key=lambda r: r.cell):
        if (r.cell.explorer == "dpor" and r.cell.seed == 0 and r.ok
                and r.stats is not None):
            bench = REGISTRY.get(r.cell.bench_id)
            if bench is not None:
                rows.append(_figure2_row(bench, r.stats))
    return rows


def figure3_rows_from_cells(
    results: Sequence[CellResult],
) -> List[Figure3Row]:
    """Figure 3 rows from benchmarks with both caching cells present."""
    by_bench: Dict[int, Dict[str, ExplorationStats]] = {}
    for r in results:
        if (r.cell.explorer in ("hbr-caching", "lazy-hbr-caching")
                and r.cell.seed == 0 and r.ok and r.stats is not None):
            by_bench.setdefault(r.cell.bench_id, {})[r.cell.explorer] = \
                r.stats
    rows = []
    for bench_id in sorted(by_bench):
        got = by_bench[bench_id]
        bench = REGISTRY.get(bench_id)
        if bench is not None and len(got) == 2:
            rows.append(
                _figure3_row(
                    bench, got["hbr-caching"], got["lazy-hbr-caching"]
                )
            )
    return rows
