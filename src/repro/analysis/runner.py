"""Experiment harnesses that regenerate the paper's evaluation.

* :func:`run_figure2` — DPOR over the suite; per benchmark, the number
  of terminal HBRs (x) and terminal lazy HBRs (y) within the schedule
  limit.  The paper found 33/79 benchmarks strictly below the diagonal
  and, among those, 80% of the unique HBRs redundant.
* :func:`run_figure3` — regular vs lazy HBR caching; per benchmark,
  the number of distinct terminal lazy HBRs each explored within the
  schedule limit.  The paper found 18/79 benchmarks where lazy caching
  explored more, by +84% across them.
* :func:`run_inequality_table` — the Section 3 chain
  ``#states <= #lazy HBRs <= #HBRs <= #schedules`` for every benchmark.

The paper used a schedule limit of 100,000 on instrumented JVM
executions; the default here is lower because pure-Python execution is
slower, and every counted quantity grows monotonically with the limit
(so diagonal structure is preserved — see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..explore.base import ExplorationLimits, ExplorationStats
from ..explore.caching import HBRCachingExplorer
from ..explore.dpor import DPORExplorer
from ..suite import all_benchmarks
from ..suite.base import Benchmark
from .stats import ScatterPoint

DEFAULT_LIMIT = 2_000


@dataclass
class Figure2Row:
    bench_id: int
    name: str
    num_schedules: int
    num_hbrs: int
    num_lazy_hbrs: int
    num_states: int
    limit_hit: bool

    def as_point(self) -> ScatterPoint:
        return ScatterPoint(
            self.bench_id, self.name, self.num_hbrs, self.num_lazy_hbrs,
            self.limit_hit,
        )


@dataclass
class Figure3Row:
    bench_id: int
    name: str
    lazy_hbrs_regular_caching: int
    lazy_hbrs_lazy_caching: int
    schedules_regular: int
    schedules_lazy: int
    limit_hit: bool

    def as_point(self) -> ScatterPoint:
        return ScatterPoint(
            self.bench_id, self.name,
            self.lazy_hbrs_regular_caching, self.lazy_hbrs_lazy_caching,
            self.limit_hit,
        )


def _limits(schedule_limit: int, seconds: Optional[float]) -> ExplorationLimits:
    return ExplorationLimits(
        max_schedules=schedule_limit, max_seconds=seconds
    )


def run_figure2(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    schedule_limit: int = DEFAULT_LIMIT,
    seconds_per_benchmark: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Figure2Row]:
    """DPOR with the regular HBR; count terminal HBRs vs lazy HBRs."""
    rows: List[Figure2Row] = []
    for b in benchmarks if benchmarks is not None else all_benchmarks():
        stats = DPORExplorer(
            b.program, _limits(schedule_limit, seconds_per_benchmark)
        ).run()
        stats.verify_inequality()
        rows.append(
            Figure2Row(
                b.bench_id, b.program.name, stats.num_schedules,
                stats.num_hbrs, stats.num_lazy_hbrs, stats.num_states,
                stats.limit_hit,
            )
        )
        if progress is not None:
            progress(stats.summary())
    return rows


def run_figure3(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    schedule_limit: int = DEFAULT_LIMIT,
    seconds_per_benchmark: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Figure3Row]:
    """Regular vs lazy HBR caching; compare terminal lazy HBRs reached."""
    rows: List[Figure3Row] = []
    for b in benchmarks if benchmarks is not None else all_benchmarks():
        regular = HBRCachingExplorer(
            b.program, _limits(schedule_limit, seconds_per_benchmark),
            lazy=False,
        ).run()
        lazy = HBRCachingExplorer(
            b.program, _limits(schedule_limit, seconds_per_benchmark),
            lazy=True,
        ).run()
        regular.verify_inequality()
        lazy.verify_inequality()
        rows.append(
            Figure3Row(
                b.bench_id, b.program.name,
                regular.num_lazy_hbrs, lazy.num_lazy_hbrs,
                regular.num_schedules, lazy.num_schedules,
                regular.limit_hit or lazy.limit_hit,
            )
        )
        if progress is not None:
            progress(
                f"{b.program.name:<34} caching={regular.num_lazy_hbrs:<6} "
                f"lazy-caching={lazy.num_lazy_hbrs:<6}"
            )
    return rows


@dataclass
class InequalityRow:
    bench_id: int
    name: str
    stats: ExplorationStats


def run_inequality_table(
    benchmarks: Optional[Sequence[Benchmark]] = None,
    schedule_limit: int = DEFAULT_LIMIT,
    seconds_per_benchmark: Optional[float] = None,
) -> List[InequalityRow]:
    """The Section 3 inequality, measured (not assumed) per benchmark."""
    rows: List[InequalityRow] = []
    for b in benchmarks if benchmarks is not None else all_benchmarks():
        stats = DPORExplorer(
            b.program, _limits(schedule_limit, seconds_per_benchmark)
        ).run()
        stats.verify_inequality()
        rows.append(InequalityRow(b.bench_id, b.program.name, stats))
    return rows
