"""Trace timeline rendering.

Turns a :class:`~repro.runtime.trace.TraceResult` into a step-by-step
text timeline — one column per thread, one row per executed event, in
schedule order — the standard way concurrency bug reports are read:

    step  T0                    T1
       0  lock(m)               .
       1  read(x) -> 0          .
       2  .                     write(z) = 7
       ...

Values are shown for reads/writes; synchronisation events are marked.
Used by the CLI (`python -m repro run`) and the bug-hunt example to
present minimized error schedules.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.events import Event, OpKind
from ..runtime.trace import TraceResult

_VALUE_KINDS = {OpKind.READ, OpKind.WRITE, OpKind.RMW}


def _describe_event(e: Event, names: Dict[int, str]) -> str:
    name = names.get(e.oid, f"o{e.oid}")
    loc = name + (f"[{e.key!r}]" if e.key is not None else "")
    kind = e.kind
    if kind == OpKind.READ:
        return f"read({loc}) -> {e.value!r}"
    if kind == OpKind.WRITE:
        return f"write({loc}) = {e.value!r}"
    if kind == OpKind.RMW:
        return f"rmw({loc}) -> {e.value!r}"
    if kind == OpKind.YIELD:
        return "yield"
    if kind == OpKind.EXIT:
        return "exit" + (" [crashed]" if e.value else "")
    if kind == OpKind.SPAWN:
        return f"spawn -> T{e.value}"
    if kind == OpKind.JOIN:
        return f"join({loc})"
    if kind == OpKind.CHAN_SEND:
        return f"send({loc})"
    if kind == OpKind.CHAN_RECV:
        return f"recv({loc}) -> {e.value!r}"
    if kind == OpKind.CHAN_CLOSE:
        return f"close({loc})"
    if kind == OpKind.FUT_SET:
        return f"fut_set({loc})"
    if kind == OpKind.FUT_GET:
        return f"fut_get({loc}) -> {e.value!r}"
    return f"{kind.name.lower()}({loc})"


def render_timeline(
    result: TraceResult,
    names: Optional[Dict[int, str]] = None,
    width: int = 26,
) -> str:
    """Render the executed schedule as a per-thread timeline."""
    names = names or {}
    tids = sorted({e.tid for e in result.events})
    col = {t: i for i, t in enumerate(tids)}

    lines: List[str] = []
    header = "step  " + "".join(f"T{t}".ljust(width) for t in tids)
    lines.append(header)
    lines.append("-" * len(header))
    for e in result.events:
        cells = ["."] * len(tids)
        cells[col[e.tid]] = _describe_event(e, names)
        lines.append(
            f"{e.index:>4}  " + "".join(c.ljust(width) for c in cells)
        )
    if result.error is not None:
        lines.append("-" * len(header))
        lines.append(f"ERROR: {type(result.error).__name__}: {result.error}")
    return "\n".join(lines)


def names_of(program) -> Dict[int, str]:
    """oid -> declared name map for a program (fresh instantiation)."""
    return {
        obj.oid: obj.name
        for obj in program.instantiate().registry.objects
    }
