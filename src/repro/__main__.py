"""Command-line interface: ``python -m repro <command>``.

Commands
--------
check TARGET              one-call front door: explore a benchmark id or
                          a ``module:function`` (shim frontend), report
                          the :class:`repro.check.CheckResult`
list                      list the 96 suite benchmarks
run ID [--schedule ...]   execute one benchmark once and show the result
explore ID [--strategy S] explore a benchmark and print the statistics
races ID                  systematic data-race hunt on a benchmark
figure2 / figure3         regenerate the paper's figures (``--jobs N``)
inequality                the Section 3 inequality table
campaign                  sharded explorer×benchmark×seed run-matrix
                          (``--jobs``, ``--seeds``, ``--smoke``,
                          ``--split-large N``, ``--resume CKPT``,
                          ``--out report.json``)
bench                     replay-loop micro-benchmarks; JSON reports
                          (``--smoke``, ``--out``, ``--baseline``,
                          ``--scenario split``)
shim-equivalence          shim-vs-DSL golden equivalence report
                          (``--out report.json`` for the CI artifact)
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    figure2_report,
    figure3_report,
    inequality_report,
    run_figure2,
    run_figure3,
    run_inequality_table,
)
from .analysis.races import find_races, race_summary
from .explore import ExplorationLimits
from .explore.controller import STANDARD_EXPLORERS
from .runtime.schedule import execute
from .suite import REGISTRY, all_benchmarks


def _resolve_check_target(spec: str):
    """A ``check`` target: a suite benchmark id or ``module:function``."""
    if spec.isdigit():
        return _get(int(spec))
    if ":" not in spec:
        print(f"error: target must be a benchmark id or module:function, "
              f"got {spec!r}", file=sys.stderr)
        raise SystemExit(2)
    module_name, _, attr = spec.partition(":")
    import importlib
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        print(f"error: cannot import {module_name!r}: {exc}",
              file=sys.stderr)
        raise SystemExit(2)
    target = getattr(module, attr, None)
    if target is None:
        print(f"error: {module_name!r} has no attribute {attr!r}",
              file=sys.stderr)
        raise SystemExit(2)
    return target


def _cmd_check(args) -> int:
    import json

    from .check import check

    target = _resolve_check_target(args.target)
    try:
        result = check(
            target,
            explorer=args.explorer,
            max_schedules=args.limit,
            max_seconds=args.seconds,
            seeds=tuple(range(args.seeds)),
            minimize=not args.no_minimize,
            engine=args.engine,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.summary())
    if args.trace and result.trace:
        print()
        print("\n".join(result.trace))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result.to_dict(), fh, indent=1, sort_keys=True)
        print(f"wrote {args.json}")
    if args.expect is not None:
        expected_bug = args.expect == "bug"
        if result.bug_found != expected_bug:
            print(f"UNEXPECTED: expected {args.expect}, got "
                  f"{'bug' if result.bug_found else 'clean'}",
                  file=sys.stderr)
            return 1
        return 0
    return 1 if result.bug_found else 0


def _cmd_shim_equivalence(args) -> int:
    import json

    from .explore import ExplorationLimits
    from .suite.shim_twins import equivalence_report

    limits = ExplorationLimits(max_schedules=args.limit,
                               max_seconds=args.seconds)
    report = equivalence_report(limits,
                                explorers=tuple(args.explorers.split(",")))
    for name in sorted(report["pairs"]):
        pair = report["pairs"][name]
        per_explorer = " ".join(
            f"{exp}={'ok' if e['equal'] else 'DIFF'}"
            for exp, e in sorted(pair["explorers"].items())
        )
        single = "ok" if pair["single_run_equal"] else "DIFF"
        print(f"{name:<22} single-run={single} {per_explorer}")
    print(f"all_equal={report['all_equal']}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
        print(f"wrote {args.out}")
    return 0 if report["all_equal"] else 1


def _cmd_list(_args) -> int:
    print(f"{'id':>3} {'name':<38} {'family':<18} {'small':<5} expect_error")
    for b in all_benchmarks():
        print(
            f"{b.bench_id:>3} {b.program.name:<38} {b.family:<18} "
            f"{'yes' if b.small else 'no':<5} {b.expect_error or '-'}"
        )
    return 0


def _get(bench_id: int):
    if bench_id not in REGISTRY:
        print(f"error: no benchmark {bench_id} (1..{max(REGISTRY)})",
              file=sys.stderr)
        raise SystemExit(2)
    return REGISTRY[bench_id]


def _cmd_run(args) -> int:
    bench = _get(args.id)
    schedule = None
    if args.schedule:
        schedule = [int(t) for t in args.schedule.split(",")]
    result = execute(bench.program, schedule=schedule)
    print(result.describe())
    if args.timeline:
        from .analysis.traceviz import names_of, render_timeline
        print()
        print(render_timeline(result, names_of(bench.program)))
        print()
    print("final state:")
    for name, value in result.final_state.items():
        print(f"  {name} = {value!r}")
    return 0 if result.ok else 1


def _cmd_explore(args) -> int:
    bench = _get(args.id)
    factory = STANDARD_EXPLORERS.get(args.strategy)
    if factory is None:
        print(f"error: unknown strategy {args.strategy!r}; one of "
              f"{sorted(STANDARD_EXPLORERS)}", file=sys.stderr)
        return 2
    limits = ExplorationLimits(max_schedules=args.limit,
                               max_seconds=args.seconds)
    stats = factory(bench.program, limits).run()
    stats.verify_inequality()
    print(stats.summary())
    for finding in stats.errors:
        print(f"  {finding.kind}: {finding.message}")
        print(f"    schedule: {','.join(map(str, finding.schedule))}")
    return 0


def _cmd_races(args) -> int:
    bench = _get(args.id)
    limits = ExplorationLimits(max_schedules=args.limit,
                               max_seconds=args.seconds)
    report = find_races(bench.program, limits)
    instance = bench.program.instantiate()
    names = {obj.oid: obj.name for obj in instance.registry.objects}
    print(race_summary(report, names))
    return 0 if report.race_free else 1


def _cmd_figure2(args) -> int:
    rows = run_figure2(schedule_limit=args.limit,
                       seconds_per_benchmark=args.seconds,
                       progress=print if args.verbose else None,
                       jobs=args.jobs)
    print(figure2_report(rows, args.limit))
    return 0


def _cmd_figure3(args) -> int:
    rows = run_figure3(schedule_limit=args.limit,
                       seconds_per_benchmark=args.seconds,
                       progress=print if args.verbose else None,
                       jobs=args.jobs)
    print(figure3_report(rows, args.limit))
    return 0


def _cmd_inequality(args) -> int:
    rows = run_inequality_table(schedule_limit=args.limit,
                                seconds_per_benchmark=args.seconds,
                                jobs=args.jobs)
    print(inequality_report(rows))
    return 0


#: smoke-campaign defaults: a fast, behaviour-spanning subset — racy +
#: locked counters, coarse lock over disjoint data, bounded buffer,
#: condvars, a deadlock (36), an assertion violation (47), a mutual-
#: exclusion protocol, an SC litmus test, and the channel/future
#: family (pipeline 80, seeded producer-consumer bug 84, future DAG
#: 86, close race 87), and the virtual-time family (seeded lease-expiry
#: bug 89, timed-retry storm bug 93).
SMOKE_IDS = (1, 2, 5, 10, 24, 28, 36, 47, 48, 75, 80, 84, 86, 87, 89, 93)
SMOKE_EXPLORERS = "dpor,lazy-hbr-caching,random"
SMOKE_LIMIT = 150


def _campaign_worker(args) -> int:
    """``campaign --worker``: serve leases from a coordinator."""
    import os

    from .campaign.chaos import ChaosPlan
    from .campaign.distributed import (
        DistributedWorker,
        FileWorkerChannel,
        TcpWorkerChannel,
        TransportError,
    )
    from .campaign.distributed.transport import parse_hostport

    worker_id = args.worker_id or f"worker-{os.getpid()}"
    if args.transport == "file":
        if not args.queue:
            print("error: --transport file needs --queue DIR",
                  file=sys.stderr)
            return 2
        channel = FileWorkerChannel(args.queue, worker_id)
    else:
        if not args.connect:
            print("error: --worker over tcp needs --connect HOST:PORT",
                  file=sys.stderr)
            return 2
        host, port = parse_hostport(args.connect)
        channel = TcpWorkerChannel(host, port, worker_id)
    chaos = None
    if args.chaos:
        try:
            chaos = ChaosPlan.load(args.chaos)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    worker = DistributedWorker(
        channel, chaos=chaos, hard_timeout=args.hard_timeout,
        progress=print if args.verbose else None,
    )
    try:
        stats = worker.run()
    except TransportError as exc:
        print(f"worker {worker_id}: {exc}", file=sys.stderr)
        return 1
    finally:
        channel.close()
    print(f"worker {worker_id}: tasks={stats['tasks']} "
          f"completed={stats['completed']} "
          f"abandoned={stats['abandoned']} donated={stats['donated']}")
    return 0


def _campaign_coordinate(args, cells, limits, store):
    """``campaign --coordinator``: own the queue, workers explore."""
    from .campaign.distributed import (
        Coordinator,
        FileCoordinatorServer,
        TcpCoordinatorServer,
    )
    from .campaign.distributed.transport import parse_hostport

    if args.transport == "file":
        if not args.queue:
            print("error: --transport file needs --queue DIR",
                  file=sys.stderr)
            return None
        server = FileCoordinatorServer(args.queue)
        where = args.queue
    else:
        host, port = parse_hostport(args.bind or "127.0.0.1:0")
        server = TcpCoordinatorServer(host, port)
        where = "%s:%d" % server.address
    state_path = args.state or (f"{args.resume}.coordinator.json"
                                if args.resume else None)
    coordinator = Coordinator(
        cells, limits, server=server, store=store,
        state_path=state_path,
        lease_timeout=args.lease_timeout,
        max_cell_retries=args.max_cell_retries,
        steal=not args.no_steal,
        progress=print if args.verbose else None,
    )
    print(f"coordinator: {len(cells)} cell(s) on {args.transport} "
          f"transport at {where}"
          + (f", state in {state_path}" if state_path else ""))
    try:
        return coordinator.run()
    finally:
        server.close()


def _cmd_campaign(args) -> int:
    from .analysis.runner import (
        figure2_rows_from_cells,
        figure3_rows_from_cells,
    )
    from .campaign import (
        ResultStore,
        build_cells,
        campaign_report,
        comparison_rows,
        run_campaign,
    )
    from .explore.controller import matrix_report
    from .ioutil import atomic_write_json

    if args.worker and args.coordinator:
        print("error: --coordinator and --worker are mutually "
              "exclusive", file=sys.stderr)
        return 2
    if args.engine:
        # campaign cells run in pool/worker subprocesses; the
        # environment variable is the one channel every spawn mode
        # (fork, spawn, distributed workers) inherits
        import os

        from .core.engines import ENGINE_ENV, resolve_engine
        try:
            resolve_engine(args.engine)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        os.environ[ENGINE_ENV] = args.engine
    if args.worker:
        # workers take their configuration (limits, verify, budgets)
        # from the coordinator's hello reply, not from the CLI
        return _campaign_worker(args)

    explorers_arg = args.explorers
    limit = args.limit
    try:
        ids = ([int(t) for t in args.ids.split(",")] if args.ids
               else None)
    except ValueError:
        print(f"error: --ids must be comma-separated integers, got "
              f"{args.ids!r}", file=sys.stderr)
        return 2
    if args.smoke:
        explorers_arg = explorers_arg or SMOKE_EXPLORERS
        limit = limit if limit is not None else SMOKE_LIMIT
        ids = ids if ids is not None else list(SMOKE_IDS)
    else:
        explorers_arg = explorers_arg or "dpor,hbr-caching,lazy-hbr-caching"
        limit = limit if limit is not None else 2_000
        ids = ids if ids is not None else sorted(REGISTRY)
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2
    if args.split_large == 1 or args.split_large < 0:
        print(f"error: --split-large must be 0 (off) or >= 2, got "
              f"{args.split_large}", file=sys.stderr)
        return 2
    for i in ids:
        _get(i)  # validate early, consistent with the other commands
    explorers = explorers_arg.split(",")

    try:
        cells = build_cells(ids, explorers, seeds=args.seeds)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    limits = ExplorationLimits(max_schedules=limit,
                               max_seconds=args.seconds)
    if args.snapshot_budget_mb is not None:
        if not (args.snapshot_budget_mb >= 0):  # rejects NaN too
            print(f"error: --snapshot-budget-mb must be >= 0, got "
                  f"{args.snapshot_budget_mb}", file=sys.stderr)
            return 2
        limits.snapshot_budget_bytes = int(args.snapshot_budget_mb * 2**20)
    store = None
    if args.resume:
        store = ResultStore(args.resume, limits)
        recovered = store.load()
        if recovered:
            print(f"resuming: {recovered} cell(s) checkpointed in "
                  f"{args.resume}")
        elif store.discarded_mismatch:
            print(f"ignoring checkpoint {args.resume}: written under "
                  f"different limits")
    if args.coordinator:
        campaign = _campaign_coordinate(args, cells, limits, store)
        if campaign is None:
            return 2
    else:
        campaign = run_campaign(
            cells, limits, jobs=args.jobs, store=store,
            progress=print if args.verbose else None,
            split_large=args.split_large,
        )

    print(matrix_report(comparison_rows(campaign.results)))
    print()
    extra_counts = ""
    if campaign.num_resumed:
        extra_counts += f" resumed={campaign.num_resumed}"
    if campaign.num_split:
        extra_counts += (f" split={campaign.num_split}"
                         f"x{args.split_large}")
    print(
        f"cells={len(campaign.results)} executed={campaign.num_executed} "
        f"cached={campaign.num_cached} failed={len(campaign.failures)}"
        f"{extra_counts} "
        f"jobs={campaign.jobs} elapsed={campaign.elapsed:.1f}s"
    )

    if args.out:
        report = campaign_report(
            campaign, limits,
            meta={
                "bench_ids": ids,
                "explorers": explorers,
                "seeds": args.seeds,
                "jobs": args.jobs,
                "smoke": bool(args.smoke),
                "distributed": bool(args.coordinator),
            },
            figure2=figure2_rows_from_cells(campaign.results),
            figure3=figure3_rows_from_cells(campaign.results),
        )
        atomic_write_json(args.out, report.to_dict())
        print(f"wrote {args.out}")

    bad = campaign.unexpected if args.smoke else campaign.failures
    for r in bad:
        kind = ("failed" if not r.ok else "unexpected findings")
        detail = (r.error or "").splitlines()[0] if not r.ok else ", ".join(
            f"{e.kind}: {e.message}" for e in r.stats.errors
        )
        print(f"UNEXPECTED [{kind}] {r.cell.key}: {detail}",
              file=sys.stderr)
    return 1 if bad else 0


def _cmd_bench(args) -> int:
    from .perf.bench import main as bench_main
    return bench_main(args)


def _cmd_matrix(args) -> int:
    import json

    from .explore.controller import matrix_report, run_matrix

    ids = ([int(t) for t in args.ids.split(",")] if args.ids
           else sorted(REGISTRY))
    programs = [_get(i).program for i in ids]
    strategies = args.strategies.split(",")
    limits = ExplorationLimits(max_schedules=args.limit,
                               max_seconds=args.seconds)
    rows = run_matrix(programs, strategies, limits,
                      progress=print if args.verbose else None)
    print(matrix_report(rows))
    if args.json:
        payload = [
            {name: stats.to_dict() for name, stats in row.by_explorer.items()}
            for row in rows
        ]
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"\nwrote {args.json}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lazy happens-before SCT toolkit (PPoPP 2015 repro)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser(
        "check",
        help="explore a target and report bug/no-bug",
        description="The one-call front door: explore a suite benchmark "
                    "(by id) or any importable function authored against "
                    "repro.shim (as module:function), minimize any "
                    "finding, and print the CheckResult summary.",
    )
    p_check.add_argument("target",
                         help="benchmark id, or module:function (e.g. "
                              "examples.real_code_demo:main)")
    p_check.add_argument("--explorer", default="dpor")
    p_check.add_argument("--limit", type=int, default=2_000,
                         help="schedule limit (default 2000)")
    p_check.add_argument("--seconds", type=float, default=None,
                         help="wall-clock limit")
    p_check.add_argument("--seeds", type=int, default=1,
                         help="seeds for randomized explorers")
    p_check.add_argument("--expect", choices=("bug", "clean"),
                         help="exit 0 iff the outcome matches (else the "
                              "exit code is 1 when a bug is found)")
    p_check.add_argument("--engine",
                         choices=("ref", "accel", "native"),
                         default=None,
                         help="clock-engine backend (default: auto; "
                              "see repro.core.engines)")
    p_check.add_argument("--no-minimize", action="store_true",
                         dest="no_minimize",
                         help="skip schedule minimization")
    p_check.add_argument("--trace", action="store_true",
                         help="print the reproduction timeline")
    p_check.add_argument("--json", metavar="PATH",
                         help="write the CheckResult as JSON here")

    sub.add_parser("list", help="list the suite benchmarks")

    p_run = sub.add_parser("run", help="execute one benchmark once")
    p_run.add_argument("id", type=int)
    p_run.add_argument("--schedule", help="comma-separated thread choices")
    p_run.add_argument("--timeline", action="store_true",
                       help="render the per-thread event timeline")

    p_exp = sub.add_parser("explore", help="explore a benchmark")
    p_exp.add_argument("id", type=int)
    p_exp.add_argument("--strategy", default="dpor")
    p_exp.add_argument("--limit", type=int, default=10_000)
    p_exp.add_argument("--seconds", type=float, default=None)

    p_races = sub.add_parser("races", help="systematic data-race hunt")
    p_races.add_argument("id", type=int)
    p_races.add_argument("--limit", type=int, default=10_000)
    p_races.add_argument("--seconds", type=float, default=None)

    for name in ("figure2", "figure3", "inequality"):
        p = sub.add_parser(name, help=f"regenerate {name}")
        p.add_argument("--limit", type=int, default=2_000)
        p.add_argument("--seconds", type=float, default=5.0)
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial)")
        p.add_argument("--verbose", action="store_true")

    p_camp = sub.add_parser(
        "campaign",
        help="sharded explorer×benchmark×seed run-matrix",
        description="Run a campaign: the (explorer, benchmark, seed) "
                    "matrix sharded across a process pool, with "
                    "checkpoint/resume and a JSON report.",
    )
    p_camp.add_argument("--ids", help="comma-separated bench ids "
                                      "(default: all 79)")
    p_camp.add_argument("--explorers",
                        help="comma-separated strategy names (default: "
                             "dpor,hbr-caching,lazy-hbr-caching)")
    p_camp.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial)")
    p_camp.add_argument("--seeds", type=int, default=1,
                        help="seeds per randomized explorer "
                             "(random/pct); deterministic strategies "
                             "always run once")
    p_camp.add_argument("--limit", type=int, default=None,
                        help="schedule limit per cell (default: 2000; "
                             "150 under --smoke)")
    p_camp.add_argument("--seconds", type=float, default=None,
                        help="per-cell wall-clock timeout")
    p_camp.add_argument("--snapshot-budget-mb", type=float, default=None,
                        dest="snapshot_budget_mb", metavar="MB",
                        help="per-cell memory budget of the prefix "
                             "snapshot tree (default 4; 0 disables "
                             "snapshot resume — results are identical "
                             "either way, only slower)")
    p_camp.add_argument("--engine",
                        choices=("ref", "accel", "native"),
                        default=None,
                        help="clock-engine backend for every cell "
                             "(exported as REPRO_ENGINE so pool and "
                             "distributed workers inherit it; default: "
                             "auto)")
    p_camp.add_argument("--smoke", action="store_true",
                        help="fast CI subset; also fails on unexpected "
                             "explorer findings")
    p_camp.add_argument("--split-large", type=int, default=0,
                        dest="split_large", metavar="N",
                        help="shard each splittable cell (DFS-family "
                             "strategies) into N disjoint frontier "
                             "shards run as separate pool tasks and "
                             "union-merged; 0 = off")
    p_camp.add_argument("--resume", metavar="CKPT",
                        help="JSON checkpoint file: completed cells "
                             "(and shards) are skipped, half-explored "
                             "cells continue from their checkpointed "
                             "frontier, new results are appended after "
                             "every cell")
    p_camp.add_argument("--out", metavar="REPORT",
                        help="write the full JSON campaign report here")
    p_camp.add_argument("--verbose", action="store_true")
    # -- distributed mode (see DESIGN.md §10) --
    p_camp.add_argument("--coordinator", action="store_true",
                        help="serve this campaign's cells to remote "
                             "workers instead of running them locally")
    p_camp.add_argument("--worker", action="store_true",
                        help="lease and execute cells from a "
                             "coordinator (ignores the matrix flags; "
                             "limits come from the coordinator)")
    p_camp.add_argument("--transport", choices=("tcp", "file"),
                        default="tcp",
                        help="coordinator/worker transport: tcp "
                             "sockets, or a shared-directory file "
                             "queue (--queue) for no-network "
                             "environments")
    p_camp.add_argument("--bind", metavar="HOST:PORT",
                        help="coordinator tcp listen address "
                             "(default 127.0.0.1:0 — the chosen port "
                             "is printed)")
    p_camp.add_argument("--connect", metavar="HOST:PORT",
                        help="worker: the coordinator's tcp address")
    p_camp.add_argument("--queue", metavar="DIR",
                        help="file transport: shared queue directory")
    p_camp.add_argument("--lease-timeout", type=float, default=15.0,
                        dest="lease_timeout", metavar="SECONDS",
                        help="missed-heartbeat window after which a "
                             "worker's task is reassigned from its "
                             "last checkpoint (default 15)")
    p_camp.add_argument("--max-cell-retries", type=int, default=3,
                        dest="max_cell_retries", metavar="N",
                        help="failed/expired attempts per cell before "
                             "it is quarantined as poisonous "
                             "(default 3)")
    p_camp.add_argument("--worker-id", dest="worker_id",
                        help="stable worker name (default: "
                             "worker-<pid>)")
    p_camp.add_argument("--chaos", metavar="PLAN",
                        help="worker: JSON fault-injection plan "
                             "(see repro.campaign.chaos)")
    p_camp.add_argument("--hard-timeout", type=float, default=None,
                        dest="hard_timeout", metavar="SECONDS",
                        help="worker: hard per-cell wall-clock "
                             "watchdog; an overrunning cell is "
                             "reported as timed_out instead of "
                             "wedging the worker")
    p_camp.add_argument("--no-steal", action="store_true",
                        dest="no_steal",
                        help="coordinator: disable work stealing from "
                             "long-running splittable cells")
    p_camp.add_argument("--state", metavar="PATH",
                        help="coordinator: crash-safe queue/lease "
                             "state file (default: derived from "
                             "--resume; no file means no coordinator "
                             "crash-resume)")

    p_bench = sub.add_parser(
        "bench",
        help="replay-loop micro-benchmarks (JSON reports)",
        description="Measure schedules/sec and events/sec of the "
                    "explorer micro-benchmarks; optionally write a "
                    "BENCH_<name>.json report and compare against a "
                    "committed baseline.",
    )
    p_bench.add_argument("--scenario", choices=("micro", "split", "prefix"),
                         default="micro",
                         help="micro: replay-loop throughput cases; "
                              "split: frontier split speedup + "
                              "snapshot/resume overhead; "
                              "prefix: snapshot-tree prefix sharing "
                              "(off-vs-on speedup, replayed/fresh event "
                              "fractions, hit rate, memory high water)")
    p_bench.add_argument("--shards", type=int, default=4,
                         help="shard count for --scenario split")
    p_bench.add_argument("--cases",
                         help="comma-separated case names (default: all)")
    p_bench.add_argument("--engine",
                         choices=("ref", "accel", "native", "both"),
                         default=None,
                         help="clock-engine backend; 'both' runs every "
                              "case under ALL registered backends "
                              "(ref, accel, native), asserts the "
                              "fingerprint sets are identical, and "
                              "reports the speedups vs ref (micro "
                              "scenario only; default: auto)")
    p_bench.add_argument("--smoke", action="store_true",
                         help="fast mode for CI (shorter measurements)")
    p_bench.add_argument("--repeat", type=int, default=3,
                         help="measurement rounds per case; best wins")
    p_bench.add_argument("--min-time", type=float, default=0.25,
                         dest="min_time",
                         help="seconds of work to accumulate per round")
    p_bench.add_argument("--out", metavar="REPORT",
                         help="write the JSON report here "
                              "(e.g. BENCH_latest.json)")
    p_bench.add_argument("--baseline", metavar="REPORT",
                         help="compare against this report; exit 1 on "
                              "regression")
    p_bench.add_argument("--max-regression", type=float, default=0.30,
                         dest="max_regression",
                         help="allowed fractional slowdown vs baseline "
                              "(default 0.30)")
    p_bench.add_argument("--profile", metavar="PSTATS",
                         help="cProfile the slowest measured case and "
                              "dump pstats here (micro scenario only)")
    p_bench.add_argument("--quiet", action="store_true")

    p_equiv = sub.add_parser(
        "shim-equivalence",
        help="shim-vs-DSL golden equivalence report",
        description="Run every shim/DSL twin pair through the named "
                    "explorers and report whether fingerprints, "
                    "schedules and findings are byte-identical; exits 1 "
                    "on any divergence.",
    )
    p_equiv.add_argument("--explorers", default="dfs,dpor,pct",
                         help="comma-separated explorer names")
    p_equiv.add_argument("--limit", type=int, default=3_000,
                         help="schedule limit per run")
    p_equiv.add_argument("--seconds", type=float, default=None)
    p_equiv.add_argument("--out", metavar="REPORT",
                         help="write the JSON equivalence report here")

    p_matrix = sub.add_parser(
        "matrix", help="compare explorers over chosen benchmarks"
    )
    p_matrix.add_argument("--ids", help="comma-separated bench ids "
                                        "(default: all 79)")
    p_matrix.add_argument("--strategies", default="dpor,lazy-hbr-caching")
    p_matrix.add_argument("--limit", type=int, default=2_000)
    p_matrix.add_argument("--seconds", type=float, default=5.0)
    p_matrix.add_argument("--json", help="also write results as JSON")
    p_matrix.add_argument("--verbose", action="store_true")

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "check": _cmd_check,
        "shim-equivalence": _cmd_shim_equivalence,
        "list": _cmd_list,
        "run": _cmd_run,
        "explore": _cmd_explore,
        "races": _cmd_races,
        "figure2": _cmd_figure2,
        "figure3": _cmd_figure3,
        "inequality": _cmd_inequality,
        "matrix": _cmd_matrix,
        "campaign": _cmd_campaign,
        "bench": _cmd_bench,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:
        # output piped into e.g. `head`; not an error
        import os
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
