"""Condition variables with classic monitor semantics.

``wait(cv, m)`` atomically releases ``m`` and parks the thread on the
condition variable (one WAIT event); a subsequent ``notify`` moves the
longest-waiting thread to the *re-acquiring* phase, where its next step
is an implicit ``lock(m)`` event.  The guest's ``yield api.wait(...)``
returns only after the mutex has been re-acquired — exactly
``pthread_cond_wait`` / ``Object.wait`` behaviour, including lost
wakeups (a notify with no waiters is a no-op).

Happens-before treatment: WAIT/NOTIFY events conflict on the condvar
object in *both* relations (condvars are not mutexes, so the lazy HBR
keeps their edges), and the runtime injects a release edge
notify → resumed-thread so that code running after the wakeup is
ordered after the notify even in the lazy relation, where the implicit
re-acquire lock event carries no mutex edges.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.events import OpKind
from ..errors import InvalidOpError
from .objects import ObjectRegistry, SharedObject


class CondVar(SharedObject):
    """A condition variable; waiters resume in FIFO order."""

    __slots__ = ("waiters",)

    def __init__(self, registry: ObjectRegistry, name: str = ""):
        super().__init__(registry, name)
        self.waiters: List[int] = []

    # -- protocol --------------------------------------------------------
    # WAIT is always enabled (it releases the mutex and parks); the
    # default op_enabled suffices for all three kinds.
    def op_apply(self, op, ex, thread):
        kind = op.kind
        if kind is OpKind.WAIT:
            mutex = op.arg2
            tid = thread.tid
            if mutex.owner != tid:
                raise InvalidOpError(
                    f"wait on {self.name}: T{tid} does not hold "
                    f"{mutex.name}"
                )
            mutex.do_unlock(tid)
            self.add_waiter(tid)
            if op.timeout is not None:
                # remember where the thread parked so the executor can
                # withdraw it from the queue if its timeout fires first
                thread.parked_on = self
            ex.fx_park(thread, mutex)
        elif kind is OpKind.NOTIFY:
            ex.fx_wake(self.pop_one())
        else:  # NOTIFY_ALL
            ex.fx_wake(self.pop_all())
        return None

    def op_released_oid(self, op) -> Optional[int]:
        if op.kind is OpKind.WAIT:
            return op.arg2.oid
        return None

    def add_waiter(self, tid: int) -> None:
        self.waiters.append(tid)

    def pop_one(self) -> List[int]:
        """Waiters released by ``notify`` (at most one, FIFO)."""
        if self.waiters:
            return [self.waiters.pop(0)]
        return []

    def pop_all(self) -> List[int]:
        """Waiters released by ``notify_all``."""
        out, self.waiters = self.waiters, []
        return out

    def withdraw_waiter(self, tid: int) -> None:
        """Remove a timed-out waiter (its TIME_FIRE raced a notify and
        lost the queue slot race — nothing to remove is fine)."""
        try:
            self.waiters.remove(tid)
        except ValueError:
            pass

    def op_timeout_result(self, op):
        # threading.Condition.wait(timeout=...) contract; delivered
        # after the mutex has been re-acquired
        return False

    def state_value(self):
        # A schedule cannot end with still-parked waiters unless it
        # deadlocked; the queue is part of the state regardless.
        return ("condvar", tuple(self.waiters))

    def snapshot_state(self):
        return tuple(self.waiters)

    def restore_state(self, state) -> None:
        self.waiters = list(state)
