"""Write-once futures (single-assignment promises).

Protocol-native like :mod:`repro.runtime.channel`: the executor and
clock engines see only the per-kind rows in
:data:`~repro.core.events.KIND_SPEC`.

* ``fut_set(f, v)`` — complete the future.  Always enabled; completing
  an already-completed future is a guest error
  (:class:`~repro.errors.FutureError`): the event executes (so the
  double-set race is explorable) and the thread then crashes.
* ``fut_get(f)`` — blocking read: enabled once the future is done,
  returns the value.  FUT_GET is an *acquire* (non-modifying) access,
  so concurrent gets of the same future do not conflict — a future
  fan-out costs DPOR nothing.
* ``fut_done(f)`` — non-blocking poll; an ordinary READ event on the
  future returning the completion flag.

Happens-before: FUT_SET modifies the future, FUT_GET/READ observe it,
so every get is ordered after the set in both relations by the
ordinary acquire/modify conflict edge — set happens-before get.
"""

from __future__ import annotations

from typing import Any

from ..core.events import OpKind
from ..errors import FutureError
from .objects import ObjectRegistry, SharedObject, own_value
from .sharedvar import _hashable


class Future(SharedObject):
    """A single-assignment future: set once, read many."""

    __slots__ = ("done", "value")

    def __init__(self, registry: ObjectRegistry, name: str = ""):
        super().__init__(registry, name)
        self.done = False
        self.value: Any = None

    # -- protocol --------------------------------------------------------
    def op_enabled(self, op, tid, ex) -> bool:
        if op.kind is OpKind.FUT_GET:
            return self.done
        return True  # FUT_SET always executes; READ is the done-poll

    def op_apply(self, op, ex, thread) -> Any:
        kind = op.kind
        if kind is OpKind.FUT_GET:
            return self.value
        if kind is OpKind.FUT_SET:
            if self.done:
                ex.fx_throw(FutureError(
                    f"T{thread.tid} completed future {self.name!r} twice"
                ))
                return None
            self.done = True
            self.value = op.arg
            return None
        # the non-blocking done-poll (``api.fut_done``)
        if kind is OpKind.READ:
            return self.done
        return SharedObject.op_apply(self, op, ex, thread)

    def blocking_desc(self, op) -> str:
        return f"waiting for future {self.name!r} to complete"

    # -- state digests and snapshots ------------------------------------
    def get(self, key=None) -> bool:
        """READ events poll completion (see ``ThreadAPI.fut_done``)."""
        return self.done

    def state_value(self):
        return ("future", self.done, _hashable(self.value))

    def snapshot_state(self):
        return (self.done, own_value(self.value))

    def restore_state(self, state) -> None:
        done, value = state
        self.done = done
        self.value = own_value(value)
