"""Copy-on-write executor snapshots.

An :class:`ExecutorSnapshot` captures the complete state of an
:class:`~repro.runtime.executor.Executor` *between steps*, cheaply
enough to take at every branch point of an exploration.  The trick is
what it does **not** copy:

* Guest threads are Python generators — uncopyable — but they are pure
  coroutines: a guest body touches shared state only through executed
  operations, so its generator state is fully determined by the
  sequence of values the executor has ``send()``-ed into it.  The
  executor records that sequence per thread (the *tape*); a snapshot
  shares the live, append-only tape list and remembers only its
  current length (copy-on-write by append-only discipline).  Restoring
  builds fresh generators from a fresh
  :class:`~repro.runtime.program.ProgramInstance` and fast-forwards
  them by re-feeding the tape — no scheduling, no clock updates, no
  object operations, just C-level generator resumption.
* The :class:`~repro.core.hb.DualClockEngine` forks by sharing its
  published (immutable) clock snapshot tuples and copying only the two
  location tables and the short mutable working clocks — the engine's
  existing copy-on-publish discipline doing double duty.
* Shared objects snapshot their mutable state through
  ``snapshot_state()`` — a handful of scalars/short containers per
  object (see each primitive's implementation for its rule).
* The trace (when materialised) is a shallow list copy; events are
  immutable once stamped and stay shared.

``Executor.from_snapshot`` rebuilds a live executor from a snapshot;
the result is observably identical to replaying the snapshot's
schedule prefix from scratch — same enabled sets, fingerprints, state
hashes, schedules and statistics — which the equivalence suite
enforces over every sync primitive.

Snapshots are in-memory values (they hold live object references and
generator tapes); they are deliberately *not* serializable.  The
exploration-level cache that holds them is
:class:`repro.explore.snapshots.SnapshotTree`.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from ..core.hb import DualClockEngine


class ThreadRecord(NamedTuple):
    """Frozen per-thread state inside an :class:`ExecutorSnapshot`.

    ``tape`` is the thread's **live** send-value list, shared with the
    executor that produced the snapshot; only the first ``tape_len``
    entries belong to this snapshot (the list is append-only, so
    later appends by the live executor never invalidate them).
    ``needs_replay`` is False for finished threads that spawned no
    children — their generators are dead weight and are not rebuilt.
    The same applies to threads crashed by a runtime-injected guest
    error (``throw_exc``): the injected error is recorded here instead
    of on the tape, and a restore resynthesizes the pending EXIT from
    it rather than re-throwing into a rebuilt generator.

    A named tuple rather than a slotted class: explorers build a few
    of these per branch point on the snapshot hot path, and tuple
    construction runs at C speed.
    """

    name: str
    status: int
    tindex: int
    resuming: bool
    exit_recorded: bool
    crashed: bool
    wait_mutex_oid: Optional[int]
    tape: Optional[List[Any]]
    tape_len: int
    spawn_count: int
    needs_replay: bool
    throw_exc: Optional[Exception] = None
    # virtual-time state of a timed op/park (see executor)
    deadline: Optional[int] = None
    wake_value: Optional[bool] = None
    parked_on_oid: Optional[int] = None


class ExecutorSnapshot:
    """Complete executor state at one scheduling point.

    Passive data: building one never runs guest code.  A snapshot can
    be restored any number of times (each restore forks the engine and
    re-feeds the tapes into fresh generators).
    """

    __slots__ = (
        "program", "max_events", "fast_replay", "schedule", "num_events",
        "truncated", "error", "guest_failures", "trace", "exit_events",
        "thread_records", "spawn_origin", "object_states", "engine",
        "barrier_pending", "pred_watch", "unfinished", "runnable",
        "static_threads", "restore_fields", "_approx_bytes",
    )

    def __init__(
        self,
        program,
        max_events: int,
        fast_replay: bool,
        schedule: Tuple[int, ...],
        num_events: int,
        truncated: bool,
        error,
        guest_failures: Tuple,
        trace: Tuple,
        exit_events: Dict,
        thread_records: List[ThreadRecord],
        spawn_origin: Dict[int, Tuple[int, int]],
        object_states: List[Any],
        engine: DualClockEngine,
        barrier_pending: int,
        pred_watch: int,
        unfinished: int,
        runnable: frozenset,
        static_threads: int,
        restore_fields: Dict[str, Any],
    ) -> None:
        self.program = program
        self.max_events = max_events
        self.fast_replay = fast_replay
        self.schedule = schedule
        self.num_events = num_events
        self.truncated = truncated
        self.error = error
        self.guest_failures = guest_failures
        self.trace = trace
        self.exit_events = exit_events
        self.thread_records = thread_records
        self.spawn_origin = spawn_origin
        self.object_states = object_states
        self.engine = engine
        self.barrier_pending = barrier_pending
        self.pred_watch = pred_watch
        self.unfinished = unfinished
        self.runnable = runnable
        self.static_threads = static_threads
        #: the scalar/shared executor attributes this snapshot pins,
        #: prebuilt as a dict so a restore is one C-level
        #: ``__dict__.update`` plus the handful of per-restore values
        #: (instance, engine fork, mutable-container copies)
        self.restore_fields = restore_fields
        self._approx_bytes: Optional[int] = None

    @property
    def depth(self) -> int:
        """Schedule position this snapshot was taken at."""
        return len(self.schedule)

    @property
    def approx_bytes(self) -> int:
        """Rough resident size, computed lazily: only the snapshot
        tree's budget accounting reads it, and transient snapshots
        (:meth:`Executor.fork`) never pay for the estimate."""
        n = self._approx_bytes
        if n is None:
            n = self._approx_bytes = self._estimate_bytes()
        return n

    def _estimate_bytes(self) -> int:
        """Rough resident size, for the snapshot tree's memory budget.

        Deliberately approximate (CPython object overheads, shared
        tapes/events counted as owned): the budget bounds the order of
        magnitude of cache memory, it is not an allocator.
        """
        n = 400 + 8 * len(self.schedule)
        for rec in self.thread_records:
            n += 160 + 24 * rec.tape_len
        n += 72 * len(self.object_states)
        t = len(self.thread_records)
        entries, clocks = self.engine.table_stats()
        n += entries * (96 + 8 * t)
        n += 2 * clocks * (64 + 8 * t)
        n += 96 * len(self.trace)  # empty in fast-replay mode
        n += 88 * len(self.exit_events)
        return n
