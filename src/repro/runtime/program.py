"""Guest program definition.

A :class:`Program` is a *recipe*: a name plus a builder function that,
when invoked, produces a fresh :class:`ProgramInstance` — fresh shared
objects and fresh thread generators.  Explorers re-build the instance
for every executed schedule, which guarantees runs are independent and
object ids are identical across runs (construction order is fixed).

Example::

    def build(p: ProgramBuilder):
        m = p.mutex("m")
        x = p.var("x", 0)
        y = p.var("y", 0)

        def t1(api):
            yield api.lock(m)
            v = yield api.read(x)
            yield api.unlock(m)
            yield api.write(y, v)

        p.thread(t1)
        p.thread(t1)

    program = Program("two_readers", build)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..deprecation import install_aliases as _install_aliases
from .atomic import AtomicInt
from .barrier import Barrier
from .channel import Channel
from .condvar import CondVar
from .future import Future
from .mutex import Mutex
from .objects import ObjectRegistry, SharedObject
from .rwlock import RWLock
from .semaphore import Semaphore
from .sharedvar import SharedArray, SharedDict, SharedVar
from .vclock import ClockObject

#: A guest thread body: generator function taking (api, *args).
ThreadBody = Callable[..., Any]


class ProgramBuilder:
    """Handed to a program's build function to declare shared state and
    threads.  All declarations happen before execution starts, so object
    and thread ids are deterministic."""

    def __init__(self) -> None:
        self.registry = ObjectRegistry()
        self.threads: List[Tuple[ThreadBody, Tuple[Any, ...], str]] = []
        self.named: Dict[str, SharedObject] = {}

    # -- shared state ----------------------------------------------------
    def var(self, name: str, initial: Any = None) -> SharedVar:
        return self._remember(SharedVar(self.registry, initial, name))

    def array(self, name: str, initial) -> SharedArray:
        return self._remember(SharedArray(self.registry, initial, name))

    def dict(self, name: str, initial: Optional[Dict] = None) -> SharedDict:
        return self._remember(SharedDict(self.registry, initial, name))

    def atomic(self, name: str, initial: int = 0) -> AtomicInt:
        return self._remember(AtomicInt(self.registry, initial, name))

    def mutex(self, name: str) -> Mutex:
        return self._remember(Mutex(self.registry, name))

    def condition(self, name: str) -> CondVar:
        return self._remember(CondVar(self.registry, name))

    def semaphore(self, name: str, initial: int = 0) -> Semaphore:
        return self._remember(Semaphore(self.registry, initial, name))

    def barrier(self, name: str, parties: int) -> Barrier:
        return self._remember(Barrier(self.registry, parties, name))

    def rwlock(self, name: str) -> RWLock:
        return self._remember(RWLock(self.registry, name))

    def channel(self, name: str, capacity: int = 1) -> Channel:
        """A bounded MPMC channel (``capacity=0`` makes it rendezvous)."""
        return self._remember(Channel(self.registry, capacity, name))

    def future(self, name: str) -> Future:
        return self._remember(Future(self.registry, name))

    def _remember(self, obj: SharedObject) -> SharedObject:
        if obj.name in self.named:
            raise ValueError(f"duplicate shared object name {obj.name!r}")
        self.named[obj.name] = obj
        return obj

    # -- threads -----------------------------------------------------------
    def thread(self, body: ThreadBody, *args: Any, name: str = "") -> int:
        """Declare a static guest thread ``body(api, *args)``; returns its
        thread id (assigned in declaration order)."""
        tid = len(self.threads)
        self.threads.append((body, args, name or f"T{tid}"))
        return tid

    def timer(self, body: ThreadBody, *args: Any, period: float,
              count: int, name: str = "") -> int:
        """Declare a periodic timer thread: every virtual ``period``
        seconds it runs one iteration of ``body(api, *args)`` (a
        generator function), ``count`` times in total.  Each period
        elapses as one explorable TIMER_TICK event on the virtual
        clock — wall time is never consulted."""
        if count < 1:
            raise ValueError(f"timer needs count >= 1, got {count}")

        def timer_body(api, *a):
            for _ in range(count):
                yield api.timer_tick(period)
                yield from body(api, *a)

        return self.thread(timer_body, *args,
                           name=name or f"timer{len(self.threads)}")


#: Deprecated spelling -> canonical constructor: the condition-variable
#: constructor follows the primitive's stdlib name (PR 6 naming pass).
BUILDER_ALIASES = {
    "condvar": "condition",
}

_install_aliases(ProgramBuilder, BUILDER_ALIASES)


@dataclass
class ProgramInstance:
    """One freshly-built copy of a program, ready to execute."""

    registry: ObjectRegistry
    threads: List[Tuple[ThreadBody, Tuple[Any, ...], str]]
    named: Dict[str, SharedObject]
    #: the per-program virtual clock (registered after the program's
    #: own objects, so declaration-order oids are unaffected)
    clock: ClockObject
    #: lazily-installed op-stream cache (:class:`~repro.runtime.optrie
    #: .OpTrie`); owned by this instance because cached ops close over
    #: its shared objects
    optrie: Any = field(default=None, repr=False, compare=False)


@dataclass(frozen=True)
class Program:
    """A named, re-buildable guest program."""

    name: str
    build: Callable[[ProgramBuilder], None]
    description: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict, hash=False, compare=False)

    def instantiate(self) -> ProgramInstance:
        builder = ProgramBuilder()
        self.build(builder)
        if not builder.threads:
            raise ValueError(f"program {self.name!r} declares no threads")
        clock = ClockObject(builder.registry)
        return ProgramInstance(builder.registry, builder.threads,
                               builder.named, clock)
