"""Counting semaphore.

``acquire`` (P) is enabled while the count is positive; ``release`` (V)
is always enabled.  Semaphore events stay in the lazy HBR: the paper's
Theorem 2.2 covers mutex operations only, so semaphore edges are kept
conservatively (an ablation flag in the engine would be unsound without
an accompanying proof — see DESIGN.md §5.4).
"""

from __future__ import annotations

from ..core.events import OpKind
from .objects import ObjectRegistry, SharedObject


class Semaphore(SharedObject):
    """A counting semaphore with FIFO-free (scheduler-driven) wakeups."""

    __slots__ = ("count",)

    def __init__(self, registry: ObjectRegistry, initial: int = 0, name: str = ""):
        super().__init__(registry, name)
        if initial < 0:
            raise ValueError("semaphore count must be non-negative")
        self.count = int(initial)

    # -- protocol --------------------------------------------------------
    def op_enabled(self, op, tid, ex) -> bool:
        if op.kind is OpKind.SEM_ACQUIRE:
            return self.count > 0
        return True

    def op_apply(self, op, ex, thread):
        if op.kind is OpKind.SEM_ACQUIRE:
            self.do_acquire()
            return None
        # V returns the post-release count: callers that need a bounds
        # check (shim BoundedSemaphore) observe it atomically through the
        # op's send value, which keeps it on the replay tape.
        self.do_release()
        return self.count

    def blocking_desc(self, op) -> str:
        return f"waiting to acquire semaphore {self.name!r} (count 0)"

    def op_timeout_result(self, op):
        # threading.Semaphore.acquire(timeout=...) contract
        return False

    def can_acquire(self) -> bool:
        return self.count > 0

    def do_acquire(self) -> None:
        assert self.count > 0
        self.count -= 1

    def do_release(self) -> None:
        self.count += 1

    def state_value(self):
        return ("sem", self.count)

    def snapshot_state(self):
        return self.count

    def restore_state(self, state) -> None:
        self.count = state
