"""Plain shared data: scalar variables, arrays and dictionaries.

Conflict granularity is per *location*: a :class:`SharedVar` is one
location; each :class:`SharedArray` slot and each :class:`SharedDict`
key is its own location (the slot index / key becomes the event's
``key``), so threads writing disjoint elements do not conflict.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from ..errors import InvalidOpError
from .objects import DataObject, ObjectRegistry, own_value


class SharedVar(DataObject):
    """A single shared scalar variable."""

    __slots__ = ("value",)

    def __init__(self, registry: ObjectRegistry, initial: Any = None, name: str = ""):
        super().__init__(registry, name)
        self.value = initial

    def get(self, key=None) -> Any:
        return self.value

    def set(self, key, value) -> None:
        self.value = value

    def state_value(self):
        return _hashable(self.value)

    def snapshot_state(self):
        return own_value(self.value)

    def restore_state(self, state) -> None:
        self.value = own_value(state)


class SharedArray(DataObject):
    """A fixed-size shared array; each slot is an independent location."""

    __slots__ = ("cells",)

    def __init__(self, registry: ObjectRegistry, initial: Iterable[Any], name: str = ""):
        super().__init__(registry, name)
        self.cells: List[Any] = list(initial)

    def __len__(self) -> int:
        return len(self.cells)

    def get(self, key) -> Any:
        if not isinstance(key, int) or not (0 <= key < len(self.cells)):
            raise InvalidOpError(f"bad index {key!r} for {self.name}")
        return self.cells[key]

    def set(self, key, value) -> None:
        if not isinstance(key, int) or not (0 <= key < len(self.cells)):
            raise InvalidOpError(f"bad index {key!r} for {self.name}")
        self.cells[key] = value

    def state_value(self):
        return tuple(_hashable(v) for v in self.cells)

    def snapshot_state(self):
        return [own_value(v) for v in self.cells]

    def restore_state(self, state) -> None:
        self.cells = [own_value(v) for v in state]


class SharedDict(DataObject):
    """A shared map; each key is an independent location.

    For fingerprints to be stable across *processes* keys should be
    ints or tuples of ints (CPython string hashing is randomised per
    process); within one exploration any hashable key is fine.
    """

    __slots__ = ("table",)

    def __init__(self, registry: ObjectRegistry, initial: Dict = None, name: str = ""):
        super().__init__(registry, name)
        self.table: Dict[Any, Any] = dict(initial or {})

    def get(self, key) -> Any:
        return self.table.get(key)

    def set(self, key, value) -> None:
        self.table[key] = value

    def state_value(self):
        return tuple(sorted((repr(k), repr(v)) for k, v in self.table.items()))

    def snapshot_state(self):
        return {k: own_value(v) for k, v in self.table.items()}

    def restore_state(self, state) -> None:
        self.table = {k: own_value(v) for k, v in state.items()}


def _hashable(v: Any):
    """Coerce a guest value into something hashable for state digests."""
    if isinstance(v, (list, tuple)):
        return tuple(_hashable(x) for x in v)
    if isinstance(v, dict):
        return tuple(sorted((repr(k), repr(x)) for k, x in v.items()))
    if isinstance(v, set):
        return tuple(sorted(repr(x) for x in v))
    try:
        hash(v)
        return v
    except TypeError:
        return repr(v)
