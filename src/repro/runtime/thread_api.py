"""The operation vocabulary available to guest threads.

Guest code is written as Python generator functions whose first
parameter is a :class:`ThreadAPI`.  Every visible operation is
``yield``-ed; everything between two yields executes atomically (there
is no preemption point inside local computation, matching SCT tools
that instrument only visible operations)::

    def worker(api, m, x, y):
        yield api.lock(m)
        v = yield api.read(x)
        yield api.unlock(m)
        yield api.write(y, v + 1)

Helpers can be composed with ``yield from``::

    def locked_inc(api, m, var):
        yield api.lock(m)
        v = yield api.read(var)
        yield api.write(var, v + 1)
        yield api.unlock(m)

The methods merely *construct* :class:`~repro.core.events.Op` values;
execution happens in the :class:`~repro.runtime.executor.Executor`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..core.events import Op, OpKind, to_ticks
from ..deprecation import install_aliases as _install_aliases
from ..errors import GuestAssertionError
from .atomic import AtomicInt
from .barrier import Barrier
from .channel import Channel
from .condvar import CondVar
from .future import Future
from .mutex import Mutex
from .rwlock import RWLock
from .semaphore import Semaphore


def _ticks(timeout: Optional[float]) -> Optional[int]:
    """Seconds -> integer virtual ticks (None passes through)."""
    return None if timeout is None else to_ticks(timeout)


class ThreadAPI:
    """Factory for guest operations; one instance per guest thread."""

    __slots__ = ("tid",)

    def __init__(self, tid: int) -> None:
        self.tid = tid

    # -- plain data ------------------------------------------------------
    def read(self, var, key: Any = None) -> Op:
        """Read ``var`` (or element ``key`` of an array/dict)."""
        return Op(OpKind.READ, var, key)

    def write(self, var, value: Any, key: Any = None) -> Op:
        """Write ``value`` to ``var`` (or to element ``key``)."""
        return Op(OpKind.WRITE, var, key, value)

    def await_value(self, var, predicate: Callable[[Any], bool], key: Any = None,
                    timeout: Optional[float] = None) -> Op:
        """Blocking read: enabled only once ``predicate(value)`` holds.

        This models a spin-wait loop without generating one schedule per
        spin iteration (the standard *await* construct of modelling
        languages); the executed event is an ordinary READ.  With
        ``timeout`` the wait may instead end with the timeout firing
        (an explorable branch) and the yield returns ``False``.
        """
        return Op(OpKind.READ, var, key, predicate, timeout=_ticks(timeout))

    # -- atomics -----------------------------------------------------------
    def load(self, atom: AtomicInt) -> Op:
        return Op(OpKind.READ, atom)

    def store(self, atom: AtomicInt, value: int) -> Op:
        return Op(OpKind.WRITE, atom, None, value)

    def fetch_add(self, atom: AtomicInt, delta: int = 1) -> Op:
        """Atomically add ``delta``; the yield returns the *old* value."""
        return Op(OpKind.RMW, atom, None, AtomicInt._fetch_add(delta))

    def add_fetch(self, atom: AtomicInt, delta: int = 1) -> Op:
        """Atomically add ``delta``; the yield returns the *new* value."""
        return Op(OpKind.RMW, atom, None, AtomicInt._add_fetch(delta))

    def cas(self, atom: AtomicInt, expect: int, new: int) -> Op:
        """Compare-and-swap; the yield returns True on success."""
        return Op(OpKind.RMW, atom, None, AtomicInt._cas(expect, new))

    def exchange(self, atom: AtomicInt, new: int) -> Op:
        """Atomic swap; the yield returns the old value."""
        return Op(OpKind.RMW, atom, None, AtomicInt._exchange(new))

    def rmw(self, var, update: Callable[[Any], Any], key: Any = None) -> Op:
        """General atomic update: ``update(old) -> (new, result)``."""
        return Op(OpKind.RMW, var, key, update)

    # -- mutexes -----------------------------------------------------------
    def lock(self, m: Mutex, timeout: Optional[float] = None) -> Op:
        """Acquire ``m``.  With ``timeout`` the acquisition may instead
        time out after ``timeout`` virtual seconds (the scheduler
        explores both branches); the yield then returns ``False``
        instead of ``None``."""
        return Op(OpKind.LOCK, m, timeout=_ticks(timeout))

    def unlock(self, m: Mutex) -> Op:
        return Op(OpKind.UNLOCK, m)

    # -- condition variables -------------------------------------------------
    def wait(self, cv: CondVar, m: Mutex, timeout: Optional[float] = None) -> Op:
        """Release ``m``, park on ``cv``; returns after re-acquiring ``m``.

        Untimed waits yield ``None``.  With ``timeout`` the yield
        returns ``True`` if a notify woke the thread, ``False`` if the
        virtual-time budget fired first (either way the mutex has been
        re-acquired) — the ``Condition.wait(timeout=...)`` contract."""
        return Op(OpKind.WAIT, cv, None, m, timeout=_ticks(timeout))

    def notify(self, cv: CondVar) -> Op:
        return Op(OpKind.NOTIFY, cv)

    def notify_all(self, cv: CondVar) -> Op:
        return Op(OpKind.NOTIFY_ALL, cv)

    # -- semaphores ------------------------------------------------------------
    def sem_acquire(self, sem: Semaphore, timeout: Optional[float] = None) -> Op:
        """P on ``sem``; with ``timeout`` the yield returns ``False``
        when the timeout fires before a permit arrives."""
        return Op(OpKind.SEM_ACQUIRE, sem, timeout=_ticks(timeout))

    def sem_release(self, sem: Semaphore) -> Op:
        return Op(OpKind.SEM_RELEASE, sem)

    # -- barriers ---------------------------------------------------------------
    def barrier_wait(self, b: Barrier) -> Op:
        return Op(OpKind.BARRIER_WAIT, b)

    # -- reader/writer locks -----------------------------------------------------
    def rlock(self, rw: RWLock) -> Op:
        return Op(OpKind.RLOCK, rw)

    def runlock(self, rw: RWLock) -> Op:
        return Op(OpKind.RUNLOCK, rw)

    def wlock(self, rw: RWLock) -> Op:
        return Op(OpKind.WLOCK, rw)

    def wunlock(self, rw: RWLock) -> Op:
        return Op(OpKind.WUNLOCK, rw)

    # -- channels ----------------------------------------------------------------
    def chan_send(self, ch: Channel, value: Any,
                  timeout: Optional[float] = None) -> Op:
        """Deposit ``value`` into ``ch`` (blocks while the buffer is
        full; a rendezvous send blocks until a receiver is pending).
        Sending on a closed channel is a guest error.  With ``timeout``
        the yield returns :data:`~repro.core.events.TIMED_OUT` when the
        budget fires before space appears."""
        return Op(OpKind.CHAN_SEND, ch, value, timeout=_ticks(timeout))

    def chan_recv(self, ch: Channel, timeout: Optional[float] = None) -> Op:
        """Take the oldest value from ``ch`` (blocks while the channel
        is open and empty).  Once the channel is closed and drained,
        yields the :data:`~repro.runtime.channel.CLOSED` sentinel.  With
        ``timeout`` the yield returns
        :data:`~repro.core.events.TIMED_OUT` when the budget fires
        while the channel is still empty."""
        return Op(OpKind.CHAN_RECV, ch, timeout=_ticks(timeout))

    def chan_close(self, ch: Channel) -> Op:
        """Close ``ch``: every blocked ``recv`` becomes enabled (the
        sentinel flows once the buffer drains).  Closing twice is a
        guest error."""
        return Op(OpKind.CHAN_CLOSE, ch)

    # -- futures -----------------------------------------------------------------
    def fut_set(self, f: Future, value: Any) -> Op:
        """Complete ``f`` with ``value``; completing twice is a guest
        error."""
        return Op(OpKind.FUT_SET, f, value)

    def fut_get(self, f: Future, timeout: Optional[float] = None) -> Op:
        """Block until ``f`` is completed; yields its value.  With
        ``timeout`` the yield returns
        :data:`~repro.core.events.TIMED_OUT` when the budget fires
        before completion."""
        return Op(OpKind.FUT_GET, f, timeout=_ticks(timeout))

    def fut_done(self, f: Future) -> Op:
        """Non-blocking completion poll (an ordinary READ event);
        yields True/False."""
        return Op(OpKind.READ, f)

    # -- threads ------------------------------------------------------------------
    def spawn(self, fn: Callable, *args: Any) -> Op:
        """Start ``fn(api, *args)`` as a new guest thread; yields its tid."""
        return Op(OpKind.SPAWN, None, (fn, args))

    def join(self, tid: int) -> Op:
        """Block until guest thread ``tid`` terminates."""
        return Op(OpKind.JOIN, None, tid)

    # -- virtual time ------------------------------------------------------------
    def sleep(self, seconds: float) -> Op:
        """Advance virtual time by ``seconds``.  One SLEEP event on the
        program's clock: time jumps to the deadline when the scheduler
        executes it — wall time is never consulted.  Yields the new
        virtual now (in ticks)."""
        return Op(OpKind.SLEEP, None, timeout=to_ticks(seconds))

    def timer_tick(self, seconds: float) -> Op:
        """One period of a periodic timer elapsing (used by
        ``ProgramBuilder.timer``); semantically a SLEEP with its own
        kind so traces show timer firings distinctly."""
        return Op(OpKind.TIMER_TICK, None, timeout=to_ticks(seconds))

    # -- misc ------------------------------------------------------------------------
    def sched_yield(self) -> Op:
        """A pure scheduling point touching no shared state."""
        return Op(OpKind.YIELD)

    def guest_assert(self, condition: bool, message: str = "") -> None:
        """Assert a guest-level property.  Failure is recorded by the
        explorers as a property violation of the current schedule.  This
        is a plain call (no yield): it checks state the thread has
        already read."""
        if not condition:
            raise GuestAssertionError(self.tid, message)


#: Deprecated spelling -> canonical method.  PR 6 aligned the channel
#: and semaphore verbs with the ``fut_*`` naming (object-kind prefix);
#: the old verbs warn once and forward.  Tests assert completeness.
THREAD_API_ALIASES = {
    "send": "chan_send",
    "recv": "chan_recv",
    "close": "chan_close",
    "acquire": "sem_acquire",
    "release": "sem_release",
}

_install_aliases(ThreadAPI, THREAD_API_ALIASES)
