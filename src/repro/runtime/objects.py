"""Shared-object base class and per-program object registry.

Every visible object a guest program can touch (variables, mutexes,
condition variables, ...) is a :class:`SharedObject` registered with the
program instance's :class:`ObjectRegistry`.  Object ids are assigned in
construction order, which makes them deterministic across executions of
the same program — a requirement for happens-before fingerprints to be
comparable between schedules.
"""

from __future__ import annotations

from typing import Any, List


class ObjectRegistry:
    """Allocates dense object ids and remembers all shared objects."""

    __slots__ = ("objects",)

    def __init__(self) -> None:
        self.objects: List["SharedObject"] = []

    def register(self, obj: "SharedObject") -> int:
        oid = len(self.objects)
        self.objects.append(obj)
        return oid

    def state_items(self):
        """Stable ``(oid, state_value)`` pairs for final-state hashing."""
        return [(o.oid, o.state_value()) for o in self.objects]


def own_value(v: Any) -> Any:
    """An independent copy of a guest value for executor snapshots.

    Containers are copied one level deep (the same granularity
    ``sharedvar._hashable`` digests); scalars are shared.  The runtime
    treats values stored in shared objects as immutable — guests
    observe them only through executed READ/RMW events — so one level
    is exactly the depth a WRITE/RMW can replace.
    """
    if isinstance(v, list):
        return list(v)
    if isinstance(v, dict):
        return dict(v)
    if isinstance(v, set):
        return set(v)
    return v


class SharedObject:
    """Base class for everything guest threads can operate on."""

    __slots__ = ("oid", "name")

    def __init__(self, registry: ObjectRegistry, name: str = "") -> None:
        self.oid = registry.register(self)
        self.name = name or f"{type(self).__name__.lower()}{self.oid}"

    def state_value(self) -> Any:
        """A hashable summary of this object's current state, used in the
        final-state hash.  Subclasses must override."""
        raise NotImplementedError

    def snapshot_state(self) -> Any:
        """This object's complete mutable state as an independent value
        (see :meth:`restore_state`); used by executor snapshots.
        Subclasses with mutable state must override both methods."""
        raise NotImplementedError

    def restore_state(self, state: Any) -> None:
        """Inverse of :meth:`snapshot_state`: overwrite this (freshly
        built) object's state with a previously captured snapshot."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r}, oid={self.oid})"


class ThreadHandle(SharedObject):
    """Pseudo-object standing for one guest thread.

    SPAWN/EXIT/JOIN events target the thread's handle, so thread
    lifecycle ordering falls out of ordinary conflict edges: EXIT
    modifies the handle and JOIN reads it.
    """

    __slots__ = ("tid",)

    def __init__(self, registry: ObjectRegistry, tid: int, name: str = "") -> None:
        super().__init__(registry, name or f"thread{tid}")
        self.tid = tid

    def state_value(self):
        return ("thread", self.tid)

    def snapshot_state(self):
        return None  # handles carry no mutable state

    def restore_state(self, state) -> None:
        pass
