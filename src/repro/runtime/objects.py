"""Shared-object base class, the sync-primitive protocol, and the
per-program object registry.

Every visible object a guest program can touch (variables, mutexes,
condition variables, channels, ...) is a :class:`SharedObject`
registered with the program instance's :class:`ObjectRegistry`.  Object
ids are assigned in construction order, which makes them deterministic
across executions of the same program — a requirement for
happens-before fingerprints to be comparable between schedules.

**The sync-primitive protocol.**  Each primitive owns its operational
semantics through five methods the executor dispatches to (plus the
two snapshot methods executor snapshots use):

* :meth:`SharedObject.op_enabled` — may the pending op execute now?
* :meth:`SharedObject.op_apply` — execute it (side effects on the
  object; rarer cross-thread effects — parking the thread, waking
  waiters, crashing the guest — go through the executor's ``fx_*``
  effect hooks);
* :meth:`SharedObject.blocking_desc` — human-readable reason a
  blocked op cannot run (deadlock/scheduler diagnostics);
* :meth:`SharedObject.hb_class` — introspection: the op's
  happens-before class (see :class:`~repro.core.events.HBClass`).
  The clock engines consume the *per-kind* tables derived from
  ``KIND_SPEC`` directly, so HB treatment is changed by declaring a
  kind's class there, never by overriding this method;
* :meth:`SharedObject.op_released_oid` — the mutex oid an op
  releases as a side effect (condvar WAIT), for HB edge injection
  and DPOR conflict lookups.

Thread-lifecycle operations (SPAWN/JOIN/EXIT/YIELD) have no primitive
object semantics and stay in the executor core.  Adding a primitive
means: append its :class:`~repro.core.events.OpKind` values and their
:class:`~repro.core.events.KindSpec` rows, write one module
implementing this protocol, and expose constructors on
:class:`~repro.runtime.thread_api.ThreadAPI` and
:class:`~repro.runtime.program.ProgramBuilder` — no executor or clock
engine edits (see DESIGN.md §8).
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..core.events import KIND_SPEC, TIMED_OUT, HBClass, Op, OpKind
from ..errors import InvalidOpError


class ObjectRegistry:
    """Allocates dense object ids and remembers all shared objects."""

    __slots__ = ("objects",)

    def __init__(self) -> None:
        self.objects: List["SharedObject"] = []

    def register(self, obj: "SharedObject") -> int:
        oid = len(self.objects)
        self.objects.append(obj)
        return oid

    def state_items(self):
        """Stable ``(oid, state_value)`` pairs for final-state hashing."""
        return [(o.oid, o.state_value()) for o in self.objects]


def own_value(v: Any) -> Any:
    """An independent copy of a guest value for executor snapshots.

    Containers are copied one level deep (the same granularity
    ``sharedvar._hashable`` digests); scalars are shared.  The runtime
    treats values stored in shared objects as immutable — guests
    observe them only through executed READ/RMW events — so one level
    is exactly the depth a WRITE/RMW can replace.
    """
    if isinstance(v, list):
        return list(v)
    if isinstance(v, dict):
        return dict(v)
    if isinstance(v, set):
        return set(v)
    return v


class SharedObject:
    """Base class for everything guest threads can operate on.

    Subclasses implement the sync-primitive protocol (see the module
    docstring): the executor never enumerates primitive kinds — it
    asks the op's target.
    """

    __slots__ = ("oid", "name", "op_sites")

    def __init__(self, registry: ObjectRegistry, name: str = "") -> None:
        self.oid = registry.register(self)
        self.name = name or f"{type(self).__name__.lower()}{self.oid}"
        #: optional ``{OpKind: "stdlib call site"}`` map set by frontends
        #: (the shim sets e.g. ``{CHAN_RECV: "queue.Queue.get"}``) so
        #: blocking diagnostics speak the user's vocabulary; read only
        #: on the cold diagnostics path, never during stepping.
        self.op_sites = None

    # -- the sync-primitive protocol ------------------------------------
    def op_enabled(self, op: Op, tid: int, ex: Any) -> bool:
        """May ``op`` (pending on thread ``tid``) execute now?

        ``ex`` is the executor, for the rare semantics that depend on
        other threads' pending operations (rendezvous channels); most
        primitives answer from their own state alone.
        """
        return True

    def op_apply(self, op: Op, ex: Any, thread: Any) -> Any:
        """Execute ``op`` for ``thread`` (a guest-thread record with a
        ``tid``); returns the value delivered to the guest's ``yield``.

        Effects beyond this object's own state go through the
        executor's effect hooks: ``ex.fx_park(thread, mutex)`` parks
        the thread until woken, ``ex.fx_wake(tids)`` wakes parked
        threads (injecting release edges), ``ex.fx_throw(exc)``
        crashes the guest thread with a :class:`~repro.errors
        .GuestError` *after* this event executes (the event stays
        visible, so explorers can race-reverse it).
        """
        raise InvalidOpError(
            f"{type(self).__name__} {self.name!r} cannot execute "
            f"{op.kind.name}"
        )

    def blocking_desc(self, op: Op) -> str:
        """Why the pending ``op`` is blocked, for diagnostics (only
        called for ops whose :meth:`op_enabled` is False)."""
        return f"{op.kind.name} on {self.name!r} is blocked"

    def hb_class(self, op: Op) -> HBClass:
        """Introspection: the op's happens-before class, read from the
        per-kind registry.  The clock engines and dependence
        predicates index the dense tables derived from ``KIND_SPEC``
        directly — overriding this method does NOT change HB
        treatment (declare the kind's class in ``KIND_SPEC`` for
        that); it exists so tools and tests can inspect a primitive's
        semantics in one place."""
        return KIND_SPEC[op.kind].hb

    def op_released_oid(self, op: Op) -> Optional[int]:
        """Oid of a mutex ``op`` releases as a side effect (condvar
        WAIT), or None.  Drives the released-mutex HB edge and DPOR's
        conflict indexing."""
        return None

    def op_timeout_result(self, op: Op) -> Any:
        """The value the guest's ``yield`` receives when ``op``'s
        virtual-time budget fires before the operation could execute
        (the scheduler chose the TIME_FIRE branch).  The default is the
        :data:`~repro.core.events.TIMED_OUT` sentinel; acquisition-style
        primitives override with ``False`` to match the stdlib's
        ``acquire(timeout=...)`` contract."""
        return TIMED_OUT

    # -- state digests and snapshots ------------------------------------
    def state_value(self) -> Any:
        """A hashable summary of this object's current state, used in the
        final-state hash.  Subclasses must override."""
        raise NotImplementedError

    def snapshot_state(self) -> Any:
        """This object's complete mutable state as an independent value
        (see :meth:`restore_state`); used by executor snapshots.
        Subclasses with mutable state must override both methods."""
        raise NotImplementedError

    def restore_state(self, state: Any) -> None:
        """Inverse of :meth:`snapshot_state`: overwrite this (freshly
        built) object's state with a previously captured snapshot."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r}, oid={self.oid})"


class DataObject(SharedObject):
    """Shared base for plain data primitives (variables, arrays, dicts,
    atomics): anything exposing ``get(key)``/``set(key, value)``.

    Implements the protocol for the three data kinds — READ (including
    the blocking ``await_value`` form, whose predicate rides in
    ``op.arg2``), WRITE, and RMW (``op.arg2`` maps ``old -> (new,
    result)``; the pair executes as one indivisible event).
    """

    __slots__ = ()

    def get(self, key: Any) -> Any:
        raise NotImplementedError

    def set(self, key: Any, value: Any) -> None:
        raise NotImplementedError

    def op_enabled(self, op: Op, tid: int, ex: Any) -> bool:
        # await_value: a READ carrying a predicate is enabled only once
        # the predicate holds (models a spin-wait without generating
        # one schedule per spin iteration)
        if op.kind is OpKind.READ and op.arg2 is not None:
            return bool(op.arg2(self.get(op.arg)))
        return True

    def op_apply(self, op: Op, ex: Any, thread: Any) -> Any:
        kind = op.kind
        if kind is OpKind.READ:
            return self.get(op.arg)
        if kind is OpKind.WRITE:
            self.set(op.arg, op.arg2)
            return op.arg2
        if kind is OpKind.RMW:
            new, result = op.arg2(self.get(op.arg))
            self.set(op.arg, new)
            return result
        return SharedObject.op_apply(self, op, ex, thread)

    def blocking_desc(self, op: Op) -> str:
        if op.kind is OpKind.READ and op.arg2 is not None:
            return (
                f"await_value on {self.name!r}: predicate false for "
                f"{self.get(op.arg)!r}"
            )
        return SharedObject.blocking_desc(self, op)

    def op_timeout_result(self, op: Op):
        # a timed-out await_value reports "predicate never held"
        return False


class ThreadHandle(SharedObject):
    """Pseudo-object standing for one guest thread.

    SPAWN/EXIT/JOIN events target the thread's handle, so thread
    lifecycle ordering falls out of ordinary conflict edges: EXIT
    modifies the handle and JOIN reads it.
    """

    __slots__ = ("tid",)

    def __init__(self, registry: ObjectRegistry, tid: int, name: str = "") -> None:
        super().__init__(registry, name or f"thread{tid}")
        self.tid = tid

    def state_value(self):
        return ("thread", self.tid)

    def snapshot_state(self):
        return None  # handles carry no mutable state

    def restore_state(self, state) -> None:
        pass
