"""SCT execution substrate: shared objects, guest programs, the
stepwise executor and schedulers."""

from .atomic import AtomicInt
from .barrier import Barrier
from .channel import CLOSED, Channel
from .condvar import CondVar
from .executor import DEFAULT_MAX_EVENTS, Executor
from .future import Future
from .mutex import Mutex
from .objects import ObjectRegistry, SharedObject, ThreadHandle
from .program import Program, ProgramBuilder, ProgramInstance
from .rwlock import RWLock
from .schedule import (
    FirstEnabledScheduler,
    RandomScheduler,
    ReplayScheduler,
    RoundRobinScheduler,
    execute,
    is_feasible,
)
from .semaphore import Semaphore
from .sharedvar import SharedArray, SharedDict, SharedVar
from .thread_api import ThreadAPI
from .trace import PendingInfo, TraceResult

__all__ = [
    "AtomicInt",
    "Barrier",
    "CLOSED",
    "Channel",
    "CondVar",
    "DEFAULT_MAX_EVENTS",
    "Executor",
    "FirstEnabledScheduler",
    "Future",
    "Mutex",
    "ObjectRegistry",
    "PendingInfo",
    "Program",
    "ProgramBuilder",
    "ProgramInstance",
    "RWLock",
    "RandomScheduler",
    "ReplayScheduler",
    "RoundRobinScheduler",
    "Semaphore",
    "SharedArray",
    "SharedDict",
    "SharedObject",
    "SharedVar",
    "ThreadAPI",
    "ThreadHandle",
    "TraceResult",
    "execute",
    "is_feasible",
]
