"""Final-state capture.

The simulator has perfect visibility of guest state, so — unlike the
paper's Java tool, which had to treat "same HBR" as a proxy for "same
state" — we can digest the real final state and *verify* the chain
``#states <= #lazy HBRs <= #HBRs <= #schedules`` instead of assuming it.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..errors import GuestError
from .objects import ObjectRegistry


def compute_state_hash(
    registry: ObjectRegistry,
    thread_progress: Tuple[int, ...],
    error: Optional[GuestError],
    truncated: bool,
) -> int:
    """Digest the complete observable state at the end of a run.

    Includes every shared object's value, how far each thread got
    (relevant only for abnormal runs — for complete runs it is implied
    by the program), and the error status.
    """
    err_mark: Tuple[Any, ...] = ()
    if error is not None:
        err_mark = (type(error).__name__,)
    return hash(
        (
            tuple(registry.state_items()),
            thread_progress,
            err_mark,
            truncated,
        )
    )


def describe_state(registry: ObjectRegistry) -> Dict[str, Any]:
    """Human-readable snapshot: object name -> state value."""
    return {obj.name: obj.state_value() for obj in registry.objects}
