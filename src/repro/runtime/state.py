"""Final-state capture.

The simulator has perfect visibility of guest state, so — unlike the
paper's Java tool, which had to treat "same HBR" as a proxy for "same
state" — we can digest the real final state and *verify* the chain
``#states <= #lazy HBRs <= #HBRs <= #schedules`` instead of assuming it.

The digest must be **stable across processes**: campaign shards hash
terminal states in separate workers and the aggregator compares the
counts, so two workers must agree on every hash.  The builtin ``hash``
does not qualify — it randomises strings per process
(``PYTHONHASHSEED``) and derives ``hash(None)`` from the singleton's
address on CPython < 3.12 — so we digest a canonical ``repr`` with
``hashlib.blake2b`` instead.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

from ..errors import GuestError
from .objects import ObjectRegistry


def _canonical(v: Any) -> str:
    """A deterministic string encoding of a state value.

    ``state_value()`` implementations return ints, strings and nested
    tuples thereof, with unordered containers already sorted into
    tuples (see ``sharedvar._hashable`` and the lock/barrier objects),
    so ``repr`` of the whole structure is canonical — and runs at C
    speed, which matters because this executes once per completed
    schedule.  The cross-process regression test in
    ``tests/test_state_hash_stability.py`` enforces the contract for
    every program in the suite.
    """
    return repr(v)


@lru_cache(maxsize=16384)
def _digest(key: Tuple[Any, ...]) -> int:
    """blake2b of the canonical repr, memoised on the structured key.

    Exploration revisits a small set of terminal states thousands of
    times (racy counter: 1680 schedules, 4 distinct states), so the
    repr/encode/blake2b pipeline collapses to one builtin tuple hash
    and a dict probe on repeats.  The cache never changes a digest —
    it only skips recomputing one — and the key is exactly the payload
    that gets repr'd, so equal keys give equal digests by construction.
    """
    digest = hashlib.blake2b(_canonical(key).encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


def compute_state_hash(
    registry: ObjectRegistry,
    thread_progress: Tuple[Tuple[int, Optional[str]], ...],
    error: Optional[GuestError],
    truncated: bool,
) -> int:
    """Digest the complete observable state at the end of a run.

    Includes every shared object's value, how far each thread got
    (relevant only for abnormal runs — for complete runs it is implied
    by the program), and the error status.  The result is a stable
    64-bit int: identical across processes and hash-seed settings.

    Commutation invariance: every component must be a function of the
    trace's partial order, never of the interleaving of independent
    events — DPOR's guarantee is "one schedule per equivalence class",
    so anything order-dependent in the digest shows up as falsely
    distinct states.  Per-thread crashes are therefore digested inside
    ``thread_progress`` (each entry carries its own thread's crash
    type), and ``error`` must be an *executor-level* outcome (deadlock
    — a property of the final state) rather than a
    schedule-order-dependent choice among several threads' failures.
    """
    err_mark: Tuple[Any, ...] = ()
    if error is not None:
        err_mark = (type(error).__name__,)
    key = (
        tuple(registry.state_items()),
        thread_progress,
        err_mark,
        truncated,
    )
    try:
        return _digest(key)
    except TypeError:
        # a state_value broke the hashability contract (it would also
        # break campaign dedup); digest it uncached
        payload = _canonical(key)
        digest = hashlib.blake2b(payload.encode("utf-8"), digest_size=8)
        return int.from_bytes(digest.digest(), "big")


def describe_state(registry: ObjectRegistry) -> Dict[str, Any]:
    """Human-readable snapshot: object name -> state value."""
    return {obj.name: obj.state_value() for obj in registry.objects}
