"""Execution results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.events import Event
from ..errors import GuestError


@dataclass
class TraceResult:
    """Everything recorded about one executed schedule.

    ``hbr_fp`` / ``lazy_fp`` are the terminal fingerprints of the regular
    and lazy happens-before relations; ``state_hash`` digests the final
    values of all shared objects plus the error status.  For any two
    executions of the same program the paper's guarantees give::

        hbr_fp equal      =>  lazy_fp equal  (Theorem 2.1 + lazy ⊆ regular)
        lazy_fp equal     =>  state_hash equal  (Theorem 2.2)
    """

    program_name: str
    schedule: List[int]
    events: List[Event]
    hbr_fp: int
    lazy_fp: int
    state_hash: int
    error: Optional[GuestError] = None
    final_state: Dict[str, Any] = field(default_factory=dict)
    truncated: bool = False
    #: events executed; fast-replay executors record the count without
    #: materialising ``events``, so it may exceed ``len(events)``.
    event_count: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.error is None and not self.truncated

    @property
    def num_events(self) -> int:
        if self.event_count is not None:
            return self.event_count
        return len(self.events)

    def describe(self) -> str:
        status = "ok" if self.ok else (
            "truncated" if self.truncated else f"error: {self.error}"
        )
        return (
            f"{self.program_name}: {self.num_events} events, "
            f"schedule={self.schedule}, {status}"
        )


@dataclass(frozen=True)
class PendingInfo:
    """What a not-yet-executed thread wants to do next (DPOR lookahead)."""

    tid: int
    kind: int
    oid: int
    key: Any
    enabled: bool
    released_mutex_oid: Optional[int] = None
    #: the op carries a virtual-time timeout, so stepping it may fire
    #: the timeout instead (DPOR must treat it as always co-enabled)
    timed: bool = False

    def location(self) -> Tuple[int, Any]:
        return (self.oid, self.key)
