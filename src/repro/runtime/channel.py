"""Message-passing channels: bounded FIFO and rendezvous.

The first primitive written natively against the sync-primitive
protocol (see :mod:`repro.runtime.objects`): the executor knows nothing
about channels beyond the per-kind rows in
:data:`~repro.core.events.KIND_SPEC`.

Semantics (multi-producer, multi-consumer):

* ``capacity >= 1`` — a bounded FIFO.  ``send`` is enabled while the
  buffer has space; ``recv`` is enabled while the buffer is non-empty
  (or the channel is closed).  Values arrive in deposit order.
* ``capacity == 0`` — a rendezvous channel.  ``send`` is enabled only
  while the one-value hand-off slot is empty **and** some other thread
  is pending a ``recv`` on this channel (the one primitive semantics
  that inspects other threads' pending operations, via
  ``Executor.has_pending_recv``); the matched ``recv`` then drains the
  slot.  A send with no receiver in sight blocks — and deadlocks if no
  receiver ever arrives, which the explorers report.
* ``close`` — closing makes every blocked/future ``recv`` enabled:
  once the buffer drains, ``recv`` returns the :data:`CLOSED`
  sentinel.  Sending on a closed channel and closing twice are guest
  errors (:class:`~repro.errors.ChannelError`): the offending event
  *executes* (so DPOR can race-reverse it against the close) and the
  thread then crashes, exactly like a failed guest assertion.

Happens-before: send/recv/close all modify the channel object, so a
``recv`` is ordered after its matching ``send`` — and after every
earlier send on the channel — by ordinary conflict edges, in **both**
relations (channels are not mutexes; the lazy HBR keeps their edges).
No explicit release edges are needed.

Blocked channel threads stay *runnable with a disabled pending op*
(like mutex and semaphore blocking), not parked: wakeup order is the
scheduler's choice, which is exactly the nondeterminism the explorers
are meant to enumerate.  FIFO determinism applies to the *values* (the
buffer), not to which consumer the scheduler runs first.
"""

from __future__ import annotations

from typing import Any, List

from ..core.events import OpKind
from ..errors import ChannelError
from .objects import ObjectRegistry, SharedObject, own_value
from .sharedvar import _hashable


class _Closed:
    """Singleton sentinel returned by ``recv`` on a drained, closed
    channel (compare with ``is``)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<channel closed>"


#: The value a ``recv`` yields once the channel is closed and drained.
CLOSED = _Closed()


class Channel(SharedObject):
    """A bounded (or, with ``capacity=0``, rendezvous) MPMC channel."""

    __slots__ = ("capacity", "buffer", "closed", "sent", "received")

    def __init__(self, registry: ObjectRegistry, capacity: int = 1,
                 name: str = ""):
        super().__init__(registry, name)
        if capacity < 0:
            raise ValueError("channel capacity must be >= 0")
        self.capacity = capacity
        self.buffer: List[Any] = []   # FIFO; at most 1 entry if rendezvous
        self.closed = False
        self.sent = 0                 # informational counters
        self.received = 0

    # -- protocol --------------------------------------------------------
    def op_enabled(self, op, tid, ex) -> bool:
        kind = op.kind
        if kind is OpKind.CHAN_SEND:
            if self.closed:
                return True  # executes, then crashes the sender
            if self.capacity == 0:
                return not self.buffer and ex.has_pending_recv(self.oid, tid)
            return len(self.buffer) < self.capacity
        if kind is OpKind.CHAN_RECV:
            return bool(self.buffer) or self.closed
        return True  # CHAN_CLOSE: double-close surfaces in op_apply

    def op_apply(self, op, ex, thread) -> Any:
        kind = op.kind
        if kind is OpKind.CHAN_SEND:
            if self.closed:
                ex.fx_throw(ChannelError(
                    f"T{thread.tid} sent on closed channel {self.name!r}"
                ))
                return None
            self.buffer.append(op.arg)
            self.sent += 1
            return None
        if kind is OpKind.CHAN_RECV:
            if self.buffer:
                self.received += 1
                return self.buffer.pop(0)
            return CLOSED  # closed and drained
        # CHAN_CLOSE
        if self.closed:
            ex.fx_throw(ChannelError(
                f"T{thread.tid} closed channel {self.name!r} twice"
            ))
            return None
        self.closed = True
        return None

    def blocking_desc(self, op) -> str:
        if op.kind is OpKind.CHAN_SEND:
            if self.capacity == 0:
                if self.buffer:
                    return (
                        f"rendezvous send on {self.name!r} blocked: "
                        f"hand-off slot still full"
                    )
                return (
                    f"rendezvous send on {self.name!r} waiting for a "
                    f"pending receiver"
                )
            return (
                f"send on {self.name!r} blocked: buffer full "
                f"({len(self.buffer)}/{self.capacity})"
            )
        return f"recv on {self.name!r} blocked: channel empty and open"

    # -- state digests and snapshots ------------------------------------
    def state_value(self):
        return (
            "channel",
            tuple(_hashable(v) for v in self.buffer),
            self.closed,
            self.sent,
            self.received,
        )

    def snapshot_state(self):
        return (
            [own_value(v) for v in self.buffer],
            self.closed,
            self.sent,
            self.received,
        )

    def restore_state(self, state) -> None:
        buffer, self.closed, self.sent, self.received = state
        self.buffer = [own_value(v) for v in buffer]
