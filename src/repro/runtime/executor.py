"""The stepwise executor: the heart of the SCT runtime.

An :class:`Executor` owns one fresh :class:`ProgramInstance` and drives
its guest generators one visible operation at a time:

* every thread always has (at most) one *pending* operation — the value
  of its most recent ``yield`` — giving the one-op lookahead DPOR needs;
* :meth:`enabled` reports which pending operations can execute now;
* :meth:`step` executes one of them, records the :class:`Event`,
  updates both happens-before clock engines, resumes the generator, and
  captures its next pending op;
* when no thread is enabled and some are unfinished, the run ends in a
  recorded :class:`~repro.errors.DeadlockError`.

Explorers re-create an Executor per schedule (stateless exploration
with replay), so this class has no reset logic.

Hot-path machinery (this class runs millions of steps per campaign):

* the *runnable* thread set is maintained incrementally on status
  transitions (spawn, exit, wait, wake) — ``enabled()`` never scans
  finished or parked threads — and its result is memoised until the
  next step mutates state, so the per-scheduling-point enabledness
  test runs exactly once however many times ``is_done``/``enabled``
  are consulted.  (A finer-grained per-object watcher scheme was
  measured and *lost* to this design at realistic thread counts — in
  lock-heavy programs every thread watches the same mutex, so the
  bookkeeping outweighs the rescan of a handful of runnable threads.)
* the barrier admission pre-pass is skipped entirely unless some
  runnable thread actually pends a ``BARRIER_WAIT`` (counter maintained
  as pending ops change);
* ``fast_replay=True`` selects a reduced-bookkeeping mode for callers
  that only consume fingerprints, state hashes and schedule/event
  counts (the DFS/caching/bounded/randomised explorers): no
  :class:`Event` objects are materialised, no trace list is kept, and
  ``finish()`` skips ``describe_state``.  Fingerprints, state hashes,
  schedules and error outcomes are guaranteed identical to the default
  mode — the equivalence suite asserts this for every program in
  ``repro.suite``;
* :meth:`replay_prefix` re-executes a known-feasible prefix without
  re-validating enabledness at every step;
* ``snapshots=True`` additionally records each thread's *send tape*
  (the values its generator has received), enabling
  :meth:`snapshot`/:meth:`fork`/:meth:`from_snapshot` — copy-on-write
  executor snapshots that let explorers resume from a cached branch
  point instead of replaying the whole prefix (see
  :mod:`repro.runtime.snapshot` for the design and its guarantees).
"""

from __future__ import annotations

import enum
import os
from bisect import insort
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.events import (
    IS_ARRIVAL_SENSITIVE,
    IS_DATA,
    IS_DISTURBING,
    Event,
    Op,
    OpKind,
)
from ..core.engines import create_clock_engine, resolve_engine
from ..errors import (
    DeadlockError,
    DisabledThreadError,
    GuestError,
    InvalidOpError,
    SchedulerError,
)
from .barrier import admit_full_cohorts
from .objects import ThreadHandle
from .optrie import UNKEYABLE, OpTrie, trie_key
from .program import Program, ProgramInstance
from .snapshot import ExecutorSnapshot, ThreadRecord
from .state import compute_state_hash, describe_state
from .stepper import install_specialized_step

#: Backends whose executors run the fused fast-replay step loop
#: (:mod:`repro.runtime.stepper`) instead of the generic ``step``.
_SPECIALIZED_BACKENDS = frozenset(("accel", "native"))
from .thread_api import ThreadAPI
from .trace import PendingInfo, TraceResult

DEFAULT_MAX_EVENTS = 20_000

#: Process-wide kill switch for the op-stream cache
#: (:mod:`repro.runtime.optrie`); the byte-identity suite uses it to
#: assert cache-on == cache-off.
_OPCACHE_ON = os.environ.get("REPRO_OPCACHE", "").strip().lower() not in (
    "0", "off", "no", "false",
)

#: Kinds whose execution can change *another* thread's enabledness
#: (releases, acquisitions, lifecycle), per the kind registry.
#: READ/YIELD/JOIN/FUT_GET never do; WRITE/RMW only when some thread
#: pends an ``await_value`` predicate (tracked by a counter).  Steps of
#: non-disturbing kinds patch the memoised enabled list instead of
#: invalidating it.
_DISTURBING = IS_DISTURBING

#: Kinds whose mere *pendingness* can enable another thread (barrier
#: cohorts, rendezvous receivers): a thread arriving at one of these
#: forces an enabled-list rebuild even after a non-disturbing step.
_ARRIVAL = IS_ARRIVAL_SENSITIVE

#: Kinds handled by the executor core (thread lifecycle + pure yields);
#: everything else dispatches to the target's sync-primitive protocol.
_CORE = tuple(
    k in (OpKind.SPAWN, OpKind.JOIN, OpKind.EXIT, OpKind.YIELD)
    for k in OpKind
)

# The few OpKind members the remaining hot loops still compare against,
# as module globals (a global load is cheaper than an enum class
# attribute lookup).  The per-primitive dispatch that used to need one
# alias per kind lives in the primitives' own modules now.
_READ = OpKind.READ
_WRITE = OpKind.WRITE
_RMW = OpKind.RMW
_LOCK = OpKind.LOCK
_BARRIER_WAIT = OpKind.BARRIER_WAIT
_SPAWN = OpKind.SPAWN
_JOIN = OpKind.JOIN
_EXIT = OpKind.EXIT
_YIELD = OpKind.YIELD
_SLEEP = OpKind.SLEEP
_TIMER_TICK = OpKind.TIMER_TICK
_TIME_FIRE = OpKind.TIME_FIRE


class _Status(enum.IntEnum):
    RUNNABLE = 0
    WAITING = 1   # parked on a condition variable
    FINISHED = 2


#: Immortal per-tid ThreadAPI instances.  A ThreadAPI is an immutable
#: op factory (one ``tid`` slot, no state), so every executor can hand
#: the same instance to its thread ``tid`` — snapshot restores build
#: threads millions of times per campaign and the allocation shows up.
_THREAD_APIS: List[ThreadAPI] = []


def _thread_api(tid: int) -> ThreadAPI:
    apis = _THREAD_APIS
    while len(apis) <= tid:
        apis.append(ThreadAPI(len(apis)))
    return apis[tid]


class _GuestThread:
    __slots__ = (
        "tid", "name", "gen", "pending", "status", "tindex",
        "handle", "wait_mutex", "resuming", "exit_recorded", "crashed",
        "tape", "spawn_count", "throw_exc",
        "deadline", "wake_value", "parked_on", "trie_node", "pinfo",
    )

    def __init__(self, tid: int, name: str, gen, handle: ThreadHandle) -> None:
        self.tid = tid
        self.name = name
        self.gen = gen
        self.pending: Optional[Op] = None
        self.status = _Status.RUNNABLE
        self.tindex = 0
        self.handle = handle
        self.wait_mutex = None        # mutex to re-acquire after a wait
        self.resuming = False         # pending op is the implicit re-lock
        self.exit_recorded = False
        self.crashed = False          # terminated by a guest assertion
        self.tape: Optional[List[Any]] = None  # send-value record (snapshots)
        self.spawn_count = 0          # executed SPAWNs (snapshot bookkeeping)
        self.throw_exc: Optional[GuestError] = None  # fx_throw injected error
        # virtual-time bookkeeping for the pending op (set when a timed
        # op becomes pending; survives a timed condvar park)
        self.deadline: Optional[int] = None   # armed timeout (relative ticks)
        self.wake_value: Optional[bool] = None  # timed wait: notified?
        self.parked_on = None         # condvar a *timed* wait parked on
        #: op-cache position (:mod:`repro.runtime.optrie`): with a live
        #: ``gen`` the thread *records* new edges here; with ``gen is
        #: None`` its ops are *served* from the trie; ``None`` = off
        self.trie_node = None
        #: memoised :class:`~repro.runtime.trace.PendingInfo` for the
        #: current pending op, as ``(op, status, info)`` — every field
        #: but ``enabled`` is a pure function of the op, so the info is
        #: valid while ``pending``/``status`` are unchanged (DPOR asks
        #: for the whole lookahead at every scheduling point)
        self.pinfo = None


class Executor:
    """Stepwise execution of one program instance under external control."""

    def __init__(
        self,
        program: Program,
        max_events: int = DEFAULT_MAX_EVENTS,
        canonical: bool = False,
        fast_replay: bool = False,
        snapshots: bool = False,
        engine: Optional[str] = None,
    ) -> None:
        self.program = program
        self.instance: ProgramInstance = program.instantiate()
        self._clock = self.instance.clock
        # canonical runs always use the reference engine (the exact HBR
        # forms are analysis machinery); otherwise the backend registry
        # resolves engine name -> implementation (None = env/auto; auto
        # routes by execution mode — see repro.core.engines)
        self.engine_name = (
            "ref" if canonical
            else resolve_engine(engine, fast_replay=fast_replay)
        )
        self.engine = create_clock_engine(self.engine_name, canonical=canonical)
        self.max_events = max_events
        self.fast_replay = fast_replay
        #: record per-thread send tapes so snapshot()/fork() work; the
        #: recording itself never changes behaviour (one list append
        #: per generator resume)
        self._record = snapshots
        #: the *public* snapshot() contract flag: the op cache below may
        #: force recording on anyway, but callers who built the executor
        #: with ``snapshots=False`` still get the loud error (internal
        #: users that know recording is live bypass via _snapshot_ok)
        self._snapshot_ok = snapshots
        #: programs whose guests mutate host-side Python state (the shim
        #: frontend: closures, lists, per-object hold maps) opt in to
        #: replaying *every* thread's tape on snapshot restore — a
        #: finished thread's side effects live outside the runtime
        #: objects, so skipping its generator would lose them
        self._replay_all_tapes = bool(
            program.metadata.get("replay_finished_threads")
        )
        #: op-stream cache (see :mod:`repro.runtime.optrie`): serves
        #: previously-seen guest op sequences without generators.
        #: Excluded exactly where tape-skipping is (guests with
        #: host-side state); enabling it forces tape recording, which
        #: materialisation needs
        self._optrie: Optional[OpTrie] = None
        if _OPCACHE_ON and not self._replay_all_tapes:
            trie = self.instance.optrie
            if trie is None:
                trie = self.instance.optrie = OpTrie()
            self._optrie = trie
            self._record = True
        self._spawn_origin: Dict[int, Tuple[int, int]] = {}
        self.trace: List[Event] = []
        self.schedule: List[int] = []
        self.threads: List[_GuestThread] = []
        self.error: Optional[GuestError] = None  # deadlock / fatal errors
        self.guest_failures: List[GuestError] = []  # per-thread crashes
        self.truncated = False
        self._exit_events: Dict[int, Event] = {}
        self._num_events = 0
        # incremental scheduling state (see module docstring)
        self._runnable: Set[int] = set()       # tids with status RUNNABLE
        self._runnable_sorted: Optional[List[int]] = None
        self._unfinished = 0                   # threads not FINISHED
        self._barrier_pending = 0              # runnable pending BARRIER_WAITs
        self._pred_watch = 0                   # pending await_value READs
        # tids parked on a condvar *with a deadline*: steppable even
        # though WAITING (the step is their timeout firing)
        self._timed_parked: Set[int] = set()
        # memoised enabled list; membership tests run on the list
        # itself — linear, but enabled sets are tiny and a C-level list
        # scan beats building a set on every rebuild
        self._enabled_cache: Optional[List[int]] = None
        # per-step effect scratch, written by primitives' op_apply via
        # the fx_* hooks and drained by step(); the _fx_any flag keeps
        # the common (effect-free) step at a single bool test
        self._fx_any = False
        self._fx_woken: Optional[List[int]] = None
        self._fx_parked = False
        self._fx_released: Optional[int] = None
        self._fx_throw: Optional[GuestError] = None

        self._static_threads = len(self.instance.threads)
        self.engine.reserve(self._static_threads)
        for body, args, name in self.instance.threads:
            self._create_thread(body, args, name)
        #: registry size before any guest code ran (build-time objects
        #: plus the static thread handles); release_instance compares
        #: against this to detect runtime object creation, which makes
        #: instance reuse unsound (fast-forward re-runs the creating
        #: host code and would register duplicates)
        self._boot_objects = len(self.instance.registry.objects)
        if fast_replay and self.engine.backend in _SPECIALIZED_BACKENDS:
            install_specialized_step(self)

    @property
    def num_events(self) -> int:
        """Events executed so far (= ``len(trace)`` in default mode)."""
        return self._num_events

    # ------------------------------------------------------------------
    # Thread management
    def _create_thread(self, body: Callable, args: Tuple, name: str) -> _GuestThread:
        tid = len(self.threads)
        handle = ThreadHandle(self.instance.registry, tid)
        t = _GuestThread(tid, name or f"T{tid}", None, handle)
        if self._record:
            t.tape = []
        self.threads.append(t)
        self._runnable.add(tid)
        self._runnable_sorted = None
        self._unfinished += 1
        if tid >= self._static_threads:
            self.engine.register_thread(tid)  # reserve() covered the rest
        trie = self._optrie
        static = tid < self._static_threads
        if trie is not None and static:
            root = trie.roots.get(tid)
            if root is not None:
                # op-cache hit: serve the first op without building the
                # generator at all (it materialises only if this run's
                # send history leaves the recorded trie)
                t.trie_node = root
                self._serve_pending(t, root[0])
                return t
        t.gen = body(_thread_api(tid), *args)
        self._advance(t, None, first=True)
        if trie is not None and static and trie.nodes < trie.cap:
            trie.nodes += 1
            t.trie_node = trie.roots[tid] = [t.pending, None]
        return t

    def _serve_pending(self, t: _GuestThread, op: Op) -> None:
        """Install a trie-served pending op, with the same
        pending-arrival bookkeeping as the live path's tail (the
        SLEEP/TIMER_TICK clock re-point is idempotent: cached ops
        already target this instance's clock)."""
        t.pending = op
        kind = op.kind
        if op.timeout is not None:
            if op.target is None and (kind is _SLEEP or kind is _TIMER_TICK):
                op.target = self._clock
            t.deadline = op.timeout
        if kind is _BARRIER_WAIT:
            self._barrier_pending += 1
        elif kind is _READ and op.arg2 is not None:
            self._pred_watch += 1

    def _trie_extend(self, t: _GuestThread, node, send_value: Any,
                     op: Op) -> None:
        """Record the live-executed edge ``send_value -> op`` under
        ``node`` and move ``t``'s cache position onto it.  An
        unkeyable value (or a full trie) permanently drops the thread
        out of the cache instead."""
        key = trie_key(send_value)
        if key is UNKEYABLE:
            t.trie_node = None
            return
        children = node[1]
        if children is None:
            children = node[1] = {}
        child = children.get(key)
        if child is None:
            trie = self._optrie
            if trie.nodes >= trie.cap:
                t.trie_node = None
                return
            trie.nodes += 1
            child = children[key] = [op, None]
        t.trie_node = child

    def _materialize(self, t: _GuestThread):
        """Rebuild a trie-served thread's generator at its current
        position by re-feeding the recorded send history — exactly a
        snapshot fast-forward.  Runs when a schedule first leaves the
        recorded trie (or an exception must be thrown into the guest);
        the guest is deterministic, so it cannot die mid-history."""
        body, args, _name = self.instance.threads[t.tid]
        gen = body(_thread_api(t.tid), *args)
        try:
            next(gen)
            send = gen.send
            for v in t.tape:
                send(v)
        except (StopIteration, GuestError) as exc:
            raise SchedulerError(
                f"op-cache divergence: thread {t.tid} ({t.name}) died "
                f"while re-feeding its recorded send history"
            ) from exc
        t.gen = gen
        return gen

    def _advance(self, t: _GuestThread, send_value: Any, first: bool = False) -> None:
        """Resume ``t``'s generator and capture its next pending op —
        or, for a trie-served thread, look the op up in the op-stream
        cache without touching a generator at all."""
        gen = t.gen
        node = t.trie_node
        if gen is None and node is not None:
            children = node[1]
            if children is not None:
                key = trie_key(send_value)
                if key is not UNKEYABLE:
                    child = children.get(key)
                    if child is not None:
                        t.tape.append(send_value)
                        t.trie_node = child
                        self._serve_pending(t, child[0])
                        return
            # unexplored edge: build the generator at this position and
            # fall through to live execution (recording resumes below)
            gen = self._materialize(t)
        if t.tape is not None and not first:
            # the tape records the value even when the send terminates
            # the generator: fast-forward re-feeds it to reproduce the
            # same StopIteration/GuestError
            t.tape.append(send_value)
        try:
            op = next(gen) if first else gen.send(send_value)
        except StopIteration:
            op = Op(OpKind.EXIT, t.handle)
            t.pending = op
            if node is not None:
                self._trie_extend(t, node, send_value, op)
            return
        except GuestError as exc:
            # A guest assertion failure crashes only this thread: its
            # death becomes an ordinary EXIT event (carrying the error),
            # and the other threads keep running.  A global abort would
            # make terminal states depend on where *concurrent* threads
            # happened to be, which breaks the trace-equivalence
            # arguments every POR strategy relies on.
            op = Op(OpKind.EXIT, t.handle, exc)
            t.pending = op
            if node is not None:
                self._trie_extend(t, node, send_value, op)
            return
        if not isinstance(op, Op):
            raise InvalidOpError(
                f"thread {t.name} yielded {op!r}; guest threads must yield "
                f"Op values built with the ThreadAPI"
            )
        if node is not None:
            self._trie_extend(t, node, send_value, op)
        t.pending = op
        kind = op.kind
        if op.timeout is not None:
            # SLEEP/TIMER_TICK target the program clock (the API cannot
            # reach it, so the op arrives with target=None).  The armed
            # value is the RELATIVE duration: the clock advances by it
            # when (if) the time event executes.  Capturing an absolute
            # deadline here would read the clock at pending-creation
            # time, making it depend on how independent events
            # interleaved — unsound for DPOR (commuting an unrelated
            # event with a clock advance would change the deadline).
            if op.target is None and (kind is _SLEEP or kind is _TIMER_TICK):
                op.target = self._clock
            t.deadline = op.timeout
        if kind is _BARRIER_WAIT:
            self._barrier_pending += 1
        elif kind is _READ and op.arg2 is not None:
            self._pred_watch += 1

    def _advance_throw(self, t: _GuestThread, exc: GuestError) -> None:
        """Resume ``t`` by throwing ``exc`` into its generator
        (:meth:`fx_throw`): the guest dies at its current yield and the
        crash is recorded like a failed assertion — a pending EXIT
        event carrying the error.  Nothing is appended to the send
        tape; snapshots record the injected error instead (the
        generator is dead weight from here on, exactly like a
        StopIteration'd one).

        The injected error is fatal by contract: a guest that catches
        it and returns still crashes with ``exc`` (swallowing the
        violation does not undo it); a guest that escalates to a
        different :class:`GuestError` crashes with *that* error; a
        guest that catches it and yields again has diverged from its
        send tape, which is a modelling error, not a schedule outcome.
        """
        if t.gen is None and t.trie_node is not None:
            # a trie-served thread needs a real generator to die in;
            # injected exceptions are not part of the send alphabet, so
            # the thread leaves the op cache for good
            self._materialize(t)
        t.trie_node = None
        try:
            t.gen.throw(exc)
        except StopIteration:
            pass
        except GuestError as raised:
            exc = raised
        else:
            raise InvalidOpError(
                f"thread {t.name} caught a runtime-injected "
                f"{type(exc).__name__} and kept running; guests must "
                f"not intercept channel/future violations"
            )
        t.throw_exc = exc
        t.pending = Op(OpKind.EXIT, t.handle, exc)

    # ------------------------------------------------------------------
    # Effect hooks (called by primitives' op_apply during step())
    def fx_park(self, t: _GuestThread, mutex) -> None:
        """Park the stepping thread until :meth:`fx_wake` releases it;
        its wakeup re-acquires ``mutex`` as an implicit LOCK event
        before the guest's yield returns (monitor semantics).  The
        parking op's event carries the released mutex oid, so the
        regular HBR orders later lock() events after it."""
        t.wait_mutex = mutex
        t.status = _Status.WAITING
        self._runnable.discard(t.tid)
        self._runnable_sorted = None
        self._fx_released = mutex.oid
        self._fx_parked = True
        self._fx_any = True

    def fx_wake(self, tids: List[int]) -> None:
        """Wake parked threads: the executing event gets a release edge
        to each (in both relations), and their pending op becomes the
        implicit re-acquire of their park mutex."""
        if tids:
            self._fx_woken = tids
            self._fx_any = True

    def fx_throw(self, exc: GuestError) -> None:
        """Crash the stepping guest thread with ``exc`` after the
        current event executes: the generator is resumed by *throwing*
        instead of sending, so the failure is recorded exactly like a
        guest assertion (a per-thread crash carried by the EXIT event)
        and explorers can race-reverse the event that triggered it."""
        self._fx_throw = exc
        self._fx_any = True

    # ------------------------------------------------------------------
    # Enabledness
    def _admit_barriers(self) -> None:
        """Deterministic pre-pass: admit full barrier cohorts.  Skipped
        entirely when no runnable thread is pending a barrier wait; the
        cohort rule itself lives in :mod:`repro.runtime.barrier`."""
        if not self._barrier_pending:
            return
        admit_full_cohorts(
            (t.tid, t.pending.target)
            for t in self.threads
            if (
                t.status == _Status.RUNNABLE
                and t.pending is not None
                and t.pending.kind is _BARRIER_WAIT
                and t.tid not in t.pending.target.admitted
            )
        )

    def _op_enabled(self, t: _GuestThread) -> bool:
        op = t.pending
        target = op.target
        if target is None:
            # SPAWN / JOIN / YIELD: lifecycle ops with no shared object
            if op.kind is _JOIN:
                joined = op.arg
                return (
                    0 <= joined < len(self.threads)
                    and self.threads[joined].status == _Status.FINISHED
                )
            return True
        return target.op_enabled(op, t.tid, self)

    def _blocked_reason(self, t: _GuestThread) -> str:
        """Why ``t``'s pending op cannot run, via the primitive's
        ``blocking_desc`` (diagnostics; never on the hot path)."""
        op = t.pending
        if op is None:
            return "no pending operation"
        if op.target is None:
            if op.kind is _JOIN:
                return f"waiting to join T{op.arg} (still running)"
            return f"{op.kind.name} blocked"  # pragma: no cover
        reason = op.target.blocking_desc(op)
        sites = op.target.op_sites
        if sites:
            site = sites.get(op.kind)
            if site:
                return f"{site}: {reason}"
        return reason

    def has_pending_recv(self, oid: int, sender_tid: int) -> bool:
        """Is some *other* runnable thread pending a CHAN_RECV on the
        channel ``oid``?  Rendezvous-send enabledness (the one primitive
        semantics that depends on other threads' pending ops)."""
        recv = OpKind.CHAN_RECV
        for t in self.threads:
            if t.tid != sender_tid and t.status == _Status.RUNNABLE:
                op = t.pending
                if (
                    op is not None
                    and op.kind is recv
                    and op.target.oid == oid
                ):
                    return True
        return False

    def enabled(self) -> List[int]:
        """Sorted tids whose pending operation can execute now.

        Memoised until the next step; only *runnable* threads are ever
        tested (the runnable set is maintained incrementally on status
        transitions).  Callers must not mutate the returned list.
        """
        # terminal states win over any memoised list: error/truncation
        # can be set between steps (is_done, guest exceptions) without
        # passing through the invalidation in step()
        if self.error is not None or self.truncated:
            return []
        cached = self._enabled_cache
        if cached is not None:
            return cached
        self._admit_barriers()
        runnable = self._runnable_sorted
        if runnable is None:
            runnable = self._runnable_sorted = sorted(self._runnable)
        threads = self.threads
        op_enabled = self._op_enabled
        # a timed pending op is *always* enabled: stepping it executes
        # the base operation if that can run now, else its TIME_FIRE
        result = [
            tid for tid in runnable
            if threads[tid].pending.timeout is not None
            or op_enabled(threads[tid])
        ]
        if self._timed_parked:
            # timed condvar waiters are steppable while parked (their
            # step is the timeout firing); disjoint from runnable
            result.extend(self._timed_parked)
            result.sort()
        self._enabled_cache = result
        return result

    def runnable_unfinished(self) -> List[int]:
        """Tids of threads that have not finished (enabled or blocked)."""
        return [t.tid for t in self.threads if t.status != _Status.FINISHED]

    # ------------------------------------------------------------------
    # DPOR lookahead
    def pending_info(
        self, tid: int, refresh_enabled: bool = True
    ) -> Optional[PendingInfo]:
        """The pending operation of ``tid`` as location data, or None for
        finished/parked threads.

        Memoised per thread: every field but ``enabled`` is a pure
        function of the pending op (locations, keys and released oids
        never depend on mutable object state), so the info is rebuilt
        only when the op or status changes.  ``enabled`` *is*
        state-dependent and is refreshed in place on each call;
        callers that never read it (DPOR's race analysis) pass
        ``refresh_enabled=False`` to skip the recheck.
        """
        t = self.threads[tid]
        op = t.pending
        status = t.status
        cached = t.pinfo
        if (
            cached is not None
            and cached[0] is op
            and cached[1] == status
            # a cached op-less info is the timed-waiter lookahead; it
            # only applies while the deadline is still armed
            and (op is not None or t.deadline is not None)
        ):
            info = cached[2]
            if refresh_enabled and op is not None:
                en = status == _Status.RUNNABLE and (
                    info.timed or self._op_enabled(t)
                )
                if en != info.enabled:
                    object.__setattr__(info, "enabled", en)
            return info
        if op is None:
            if t.deadline is not None and status == _Status.WAITING:
                # timed condvar waiter: the lookahead is its TIME_FIRE
                # on the clock, withdrawing it from the parked-on cv
                info = PendingInfo(
                    tid=tid,
                    kind=int(_TIME_FIRE),
                    oid=self._clock.oid,
                    key=None,
                    enabled=True,
                    released_mutex_oid=(
                        t.parked_on.oid if t.parked_on is not None else None
                    ),
                    timed=True,
                )
                t.pinfo = (None, status, info)
                return info
            return None
        oid, key = self._op_location(t, op)
        released = (
            op.target.op_released_oid(op) if op.target is not None else None
        )
        timed = op.timeout is not None
        if timed and released is None and oid != self._clock.oid:
            # a timed blocking op may execute as a TIME_FIRE on the
            # clock: expose the clock as its secondary location so
            # DPOR orders it against other time events
            released = self._clock.oid
        info = PendingInfo(
            tid=tid,
            kind=int(op.kind),
            oid=oid,
            key=key,
            enabled=status == _Status.RUNNABLE
            and (timed or self._op_enabled(t)),
            released_mutex_oid=released,
            timed=timed,
        )
        t.pinfo = (op, status, info)
        return info

    def all_pending_infos(
        self, refresh_enabled: bool = True
    ) -> List[PendingInfo]:
        self._admit_barriers()
        pending_info = self.pending_info
        infos = []
        for t in self.threads:
            info = pending_info(t.tid, refresh_enabled)
            if info is not None:
                infos.append(info)
        return infos

    @staticmethod
    def _op_location(t: _GuestThread, op: Op) -> Tuple[int, Any]:
        kind = op.kind
        if IS_DATA[kind]:
            return op.target.oid, op.arg
        if kind is _YIELD or kind is _SPAWN:
            return -1, None
        if kind is _JOIN:
            return -2, op.arg  # resolved to the handle oid at execution
        return op.target.oid, None

    # ------------------------------------------------------------------
    # Stepping
    def replay_prefix(self, tids: Sequence[int]) -> None:
        """Re-execute a known-feasible prefix of thread choices.

        This is the replay fast path: each step skips the per-step
        enabledness re-validation (the prefix was produced by a previous
        execution of the same deterministic program, so every choice is
        enabled by construction).  Genuine divergence still surfaces as
        an exception from the operation itself.
        """
        for tid in tids:
            self.step(tid, trusted=True)

    def step(self, tid: int, trusted: bool = False) -> Optional[Event]:
        """Execute ``tid``'s pending operation.

        Returns the new :class:`Event`, or ``None`` in ``fast_replay``
        mode (which materialises no events).  ``trusted`` skips the
        enabledness re-check for known-feasible replays.
        """
        if self.error is not None or self.truncated:
            raise SchedulerError("execution already terminated")
        t = self.threads[tid]
        if t.status != _Status.RUNNABLE or t.pending is None:
            if t.status == _Status.WAITING and t.deadline is not None:
                # a timed condvar waiter: stepping it while parked means
                # its timeout fires (the wait returns False)
                return self._fire_parked_timeout(t)
            raise SchedulerError(f"thread {tid} has no pending operation")
        enabled_cache = self._enabled_cache
        if trusted:
            self._admit_barriers()
        elif enabled_cache is not None:
            if tid not in enabled_cache:
                raise DisabledThreadError(
                    tid, enabled_cache, self._blocked_reason(t)
                )
        else:
            self._admit_barriers()
            if t.pending.timeout is None and not self._op_enabled(t):
                raise DisabledThreadError(
                    tid, self.enabled(), self._blocked_reason(t)
                )
        if self._num_events >= self.max_events:
            self.truncated = True
            self._enabled_cache = None
            raise SchedulerError(
                f"schedule exceeded max_events={self.max_events}"
            )

        op = t.pending
        if op.timeout is not None and not self._op_enabled(t):
            # the base operation cannot run now, so stepping this thread
            # executes the timeout branch instead — a deterministic
            # function of the current state, so replays agree
            return self._fire_pending_timeout(t, op)
        kind = op.kind
        value: Any = None
        released_mutex_oid: Optional[int] = None
        woken: Optional[List[_GuestThread]] = None
        spawned: Optional[_GuestThread] = None
        parked = False
        throw: Optional[GuestError] = None
        # _op_location, inlined (per-step hot path): data kinds key on
        # (target oid, element); SPAWN/YIELD touch nothing; JOIN is
        # resolved to the joined thread's handle in its branch below.
        if IS_DATA[kind]:
            oid, key = op.target.oid, op.arg
        elif kind is _YIELD or kind is _SPAWN or kind is _JOIN:
            oid, key = -1, None
        else:
            oid, key = op.target.oid, None
        if kind is _BARRIER_WAIT:
            self._barrier_pending -= 1
        elif kind is _READ and op.arg2 is not None:
            self._pred_watch -= 1
        # Conditional invalidation: a non-disturbing op can only change
        # the *stepping* thread's enabledness, so the memoised enabled
        # list survives and gets patched after the generator resumes.
        if _DISTURBING[kind] or (self._pred_watch and (
                kind is _WRITE or kind is _RMW)):
            self._enabled_cache = None
            patch = False
        else:
            patch = self._enabled_cache is not None

        try:
            if not _CORE[kind]:
                # the sync-primitive protocol: the target executes its
                # own operation (rare cross-thread effects arrive
                # through the fx_* scratch, drained below)
                value = op.target.op_apply(op, self, t)
            elif kind is _SPAWN:
                fn, args = op.arg
                spawned = self._create_thread(fn, args, "")
                value = spawned.tid
                oid = spawned.handle.oid
                if self._record:
                    self._spawn_origin[spawned.tid] = (tid, t.spawn_count)
                    t.spawn_count += 1
            elif kind is _JOIN:
                oid = self.threads[op.arg].handle.oid
            elif kind is _EXIT:
                if op.arg is not None:  # thread died on a guest error
                    t.crashed = True
                    t.throw_exc = op.arg  # per-thread record (state hash)
                    self.guest_failures.append(op.arg)
                    value = op.arg  # surfaced by trace renderers
            # else YIELD: a pure scheduling point, nothing to execute
        except GuestError as exc:  # pragma: no cover - defensive
            self.error = exc
            t.status = _Status.FINISHED
            t.pending = None
            self._runnable.discard(tid)
            self._runnable_sorted = None
            self._unfinished -= 1
            self._enabled_cache = None
            raise
        if self._fx_any:
            self._fx_any = False
            released_mutex_oid, self._fx_released = self._fx_released, None
            parked, self._fx_parked = self._fx_parked, False
            throw, self._fx_throw = self._fx_throw, None
            if self._fx_woken is not None:
                woken = [self.threads[w] for w in self._fx_woken]
                self._fx_woken = None
        if t.deadline is not None:
            if parked:
                # a timed condvar wait: the deadline stays armed across
                # the parked phase (fire-vs-notify is the race)
                self._timed_parked.add(tid)
            else:
                t.deadline = None  # the base operation won

        event: Optional[Event] = None
        if self.fast_replay:
            clock, lazy_clock = self.engine.observe(
                tid, kind, oid, key, released_mutex_oid
            )
        else:
            event = Event(
                index=self._num_events,
                tid=tid,
                tindex=t.tindex,
                kind=kind,
                oid=oid,
                key=key,
                value=value,
                released_mutex_oid=released_mutex_oid,
            )
            self.engine.on_event(event)
            clock, lazy_clock = event.clock, event.lazy_clock
            self.trace.append(event)
        t.tindex += 1
        self._num_events += 1
        self.schedule.append(tid)

        # Post-event bookkeeping that needs the stamped clocks.
        if spawned is not None:
            # child happens-after the spawn event (in both relations)
            self.engine.register_thread_clocks(spawned.tid, clock, lazy_clock)
        if woken:
            for w in woken:
                # notify -> wakeup edge, in both relations
                self.engine.add_release_edge_clocks(clock, lazy_clock, w.tid)
                w.status = _Status.RUNNABLE
                w.resuming = True
                w.pending = Op(OpKind.LOCK, w.wait_mutex)
                if w.deadline is not None:
                    # the notify won the race against this waiter's
                    # timeout: disarm it, record the True wake value
                    self._timed_parked.discard(w.tid)
                    w.deadline = None
                    w.parked_on = None
                    w.wake_value = True
                self._runnable.add(w.tid)
            self._runnable_sorted = None

        # Resume the generator (or finalise the thread).
        if parked:
            t.pending = None  # parked until woken (fx_wake)
        elif kind is _EXIT:
            t.status = _Status.FINISHED
            t.pending = None
            t.exit_recorded = True
            self._runnable.discard(tid)
            self._runnable_sorted = None
            self._unfinished -= 1
            if event is not None:
                self._exit_events[tid] = event
        elif t.resuming and kind is _LOCK:
            # the implicit re-acquire after a wait: now the guest's
            # `yield api.wait(...)` finally returns — with None for
            # untimed waits, True/False (notified / timed out) for
            # timed ones
            t.resuming = False
            t.wait_mutex = None
            wake_value, t.wake_value = t.wake_value, None
            self._advance(t, wake_value)
        elif throw is not None:
            self._advance_throw(t, throw)
        else:
            self._advance(t, value)

        if patch:
            # Patch the surviving memoised enabled list: only this
            # thread's entry can have changed.  A copy is patched (never
            # the published list — explorers hold references to it).
            np = t.pending
            if np is not None and _ARRIVAL[np.kind]:
                # a new arrival at an arrival-sensitive op (barrier
                # cohort member, rendezvous receiver) can enable other
                # threads: fall back to invalidation
                self._enabled_cache = None
            else:
                cache = self._enabled_cache
                now = np is not None and (
                    np.timeout is not None or self._op_enabled(t)
                )
                if now != (tid in cache):
                    cache = cache.copy()
                    if now:
                        insort(cache, tid)
                    else:
                        cache.remove(tid)
                    self._enabled_cache = cache
        return event

    # ------------------------------------------------------------------
    # Virtual-time fire paths.  Both execute a synthesised TIME_FIRE
    # event on the program clock: its primary location is the clock
    # (keeping all time events totally ordered, so "now" is a function
    # of the HB fingerprint) and its secondary location is the awaited
    # object the thread withdraws from (so DPOR race-reverses it
    # against the operation that would have satisfied the wait).  The
    # specialized accel stepper delegates to these same methods, which
    # keeps the two step implementations byte-identical on timed paths.
    def _fire_pending_timeout(self, t: _GuestThread, op: Op) -> Optional[Event]:
        """The scheduler chose the timeout branch of a timed blocking
        op: withdraw the pending op and deliver the primitive's
        timeout result to the guest."""
        if op.kind is _BARRIER_WAIT:
            self._barrier_pending -= 1
        elif op.kind is _READ and op.arg2 is not None:
            self._pred_watch -= 1
        # always disturbing: withdrawing the op can disable another
        # thread (e.g. a rendezvous sender loses its pending receiver)
        self._enabled_cache = None
        self._clock.advance_to(self._clock.now + t.deadline)
        t.deadline = None
        value = op.target.op_timeout_result(op)
        event = self._record_time_fire(t, op.target.oid, value)
        self._advance(t, value)
        return event

    def _fire_parked_timeout(self, t: _GuestThread) -> Optional[Event]:
        """A timed condvar waiter's deadline fires while parked: it is
        withdrawn from the wait queue and re-acquires its mutex, after
        which the guest's wait returns False."""
        if self._num_events >= self.max_events:
            self.truncated = True
            self._enabled_cache = None
            raise SchedulerError(
                f"schedule exceeded max_events={self.max_events}"
            )
        cv = t.parked_on
        t.parked_on = None
        cv.withdraw_waiter(t.tid)
        self._enabled_cache = None
        self._clock.advance_to(self._clock.now + t.deadline)
        t.deadline = None
        self._timed_parked.discard(t.tid)
        t.status = _Status.RUNNABLE
        t.resuming = True
        t.pending = Op(OpKind.LOCK, t.wait_mutex)
        t.wake_value = False
        self._runnable.add(t.tid)
        self._runnable_sorted = None
        return self._record_time_fire(t, cv.oid, False)

    def _record_time_fire(self, t: _GuestThread, released_oid: int,
                          value: Any) -> Optional[Event]:
        """Record one TIME_FIRE event for ``t`` (clock engines, trace,
        schedule, counters)."""
        tid = t.tid
        if self.fast_replay:
            event = None
            self.engine.observe(
                tid, _TIME_FIRE, self._clock.oid, None, released_oid
            )
        else:
            event = Event(
                index=self._num_events,
                tid=tid,
                tindex=t.tindex,
                kind=_TIME_FIRE,
                oid=self._clock.oid,
                key=None,
                value=value,
                released_mutex_oid=released_oid,
            )
            self.engine.on_event(event)
            self.trace.append(event)
        t.tindex += 1
        self._num_events += 1
        self.schedule.append(tid)
        return event

    # ------------------------------------------------------------------
    # Snapshot / fork (see repro.runtime.snapshot for the design)
    def snapshot(self) -> ExecutorSnapshot:
        """Capture the complete executor state between steps.

        O(threads + objects + clock-table entries): thread tapes are
        shared (append-only copy-on-write), the clock engine forks by
        sharing its published tuples, and each shared object contributes
        a few scalars.  Requires ``snapshots=True`` at construction (the
        send tapes must have been recorded from step zero).
        """
        if not self._snapshot_ok:
            raise SchedulerError(
                "snapshot() requires an executor built with snapshots=True"
            )
        finished = _Status.FINISHED
        records = [
            ThreadRecord(
                t.name,
                t.status,
                t.tindex,
                t.resuming,
                t.exit_recorded,
                t.crashed,
                t.wait_mutex.oid if t.wait_mutex is not None else None,
                t.tape,
                len(t.tape),
                t.spawn_count,
                # dead generators — finished threads and fx_throw
                # crashes awaiting their EXIT — are only rebuilt when
                # children need their SPAWN ops' fresh (fn, args)
                # closures, or when the program opted in to full tape
                # replay because guests carry host-side state
                (t.status != finished and t.throw_exc is None)
                or t.spawn_count > 0
                or self._replay_all_tapes,
                t.throw_exc,
                t.deadline,
                t.wake_value,
                t.parked_on.oid if t.parked_on is not None else None,
            )
            for t in self.threads
        ]
        return ExecutorSnapshot(
            self.program,
            self.max_events,
            self.fast_replay,
            tuple(self.schedule),
            self._num_events,
            self.truncated,
            self.error,
            tuple(self.guest_failures),
            tuple(self.trace),
            dict(self._exit_events),
            records,
            dict(self._spawn_origin),
            [o.snapshot_state() for o in self.instance.registry.objects],
            self.engine.fork(),
            self._barrier_pending,
            self._pred_watch,
            self._unfinished,
            frozenset(self._runnable),
            self._static_threads,
            # restore template: every scalar/immutable executor
            # attribute, blitted into a restored executor's __dict__ in
            # one C-level dict update (from_snapshot overwrites the
            # per-restore values on top)
            {
                "program": self.program,
                "_replay_all_tapes": self._replay_all_tapes,
                "max_events": self.max_events,
                "fast_replay": self.fast_replay,
                "_record": True,
                "error": self.error,
                "truncated": self.truncated,
                "_num_events": self._num_events,
                "_unfinished": self._unfinished,
                "_barrier_pending": self._barrier_pending,
                "_pred_watch": self._pred_watch,
                "_static_threads": self._static_threads,
                "_snapshot_ok": True,
                "engine_name": self.engine.backend,
                "_enabled_cache": None,
                "_runnable_sorted": None,
                "_fx_any": False,
                "_fx_woken": None,
                "_fx_parked": False,
                "_fx_released": None,
                "_fx_throw": None,
            },
        )

    def fork(self) -> "Executor":
        """An independent executor continuing from the current state
        (equivalent to replaying ``self.schedule`` on a fresh one)."""
        return Executor.from_snapshot(self.snapshot())

    @staticmethod
    def _fast_forward(
        gen,
        tape: Sequence[Any],
        tape_len: int,
        handle: ThreadHandle,
        collect_spawns: bool,
    ) -> Tuple[Op, List[Op], List[Any]]:
        """Re-feed ``tape[:tape_len]`` into a fresh generator.

        Returns ``(final pending op, executed SPAWN ops in order, the
        restored executor's own tape copy)``.  This is the whole
        per-event cost of a snapshot resume, so the common case — a
        thread that never spawned — runs a bare ``gen.send`` loop; the
        per-yield SPAWN scan only runs for threads known to have
        spawned.  The generator legitimately terminates only on the
        *last* re-fed value (the guest is deterministic); anything
        earlier means the snapshot and the program disagree.
        """
        new_tape: List[Any] = tape[:tape_len]  # slice of a list: a copy
        spawns: List[Op] = []
        i = -1
        try:
            op = next(gen)
            if collect_spawns:
                for i, v in enumerate(new_tape):
                    if op.kind is _SPAWN:
                        spawns.append(op)
                    op = gen.send(v)
            else:
                send = gen.send
                for i, v in enumerate(new_tape):
                    op = send(v)
            return op, spawns, new_tape
        except StopIteration:
            if i != tape_len - 1:
                raise SchedulerError(
                    "snapshot tape diverged: generator finished at "
                    f"send {i + 1} of {tape_len}"
                ) from None
            return Op(OpKind.EXIT, handle), spawns, new_tape
        except GuestError as exc:
            if i != tape_len - 1:
                raise SchedulerError(
                    "snapshot tape diverged: guest error at "
                    f"send {i + 1} of {tape_len}"
                ) from exc
            return Op(OpKind.EXIT, handle, exc), spawns, new_tape

    def release_instance(self):
        """Hand back this executor's program instance — and its live
        threads — for reuse by a later :meth:`from_snapshot` (the
        executor must not be used afterwards).

        Sound only when all cross-thread mutable state lives in
        registry objects — ``restore_state`` then resets everything a
        previous life touched.  That is exactly the DSL contract the
        replay-equivalence guarantees already rest on; programs that
        opt into ``replay_finished_threads`` (the shim frontend)
        carry host-side Python state outside the registry and are
        excluded, so this returns ``None`` for them.  So are instances
        whose registry grew past its boot size: an object created at
        runtime is re-created when the creating thread's tape is
        fast-forwarded, so handing such a registry to
        :meth:`from_snapshot` would register duplicates on top of the
        survivors from the previous life.

        The threads ride along for *differential restore*: when the
        recycled executor shares lineage with the snapshot being
        restored (DFS pops siblings, so it almost always does), any
        thread that provably has not advanced since the snapshot —
        same shared tape object at the same length, same
        tindex/status/flags — is moved into the new executor as-is,
        generator and all, skipping its fast-forward entirely.
        """
        if self._replay_all_tapes:
            return None
        if len(self.instance.registry.objects) != self._boot_objects:
            return None
        return (self.program, self.instance, self.threads)

    @classmethod
    def from_snapshot(cls, snap: ExecutorSnapshot, reuse=None) -> "Executor":
        """Rebuild a live executor from a snapshot.

        Observably identical to constructing a fresh executor and
        calling ``replay_prefix(snap.schedule)`` — same enabled sets,
        fingerprints, state hashes and subsequent behaviour — but pays
        only one generator resume per recorded send instead of the full
        per-event scheduling/clock pipeline.  A snapshot can be
        restored any number of times.

        ``reuse`` optionally recycles a compatible retired executor's
        instance and threads (from :meth:`release_instance`):
        ``program.instantiate()`` and the per-thread handle
        registrations are skipped, ``restore_state`` resets every
        object, and threads that provably have not advanced since the
        snapshot was taken — the recycled thread still holds the
        *identical* tape list at exactly the recorded length, with
        matching position and status flags — are adopted wholesale,
        live generator included, instead of being fast-forwarded from
        scratch.  Tape-object identity pins the shared lineage: a
        thread that advanced past the snapshot grew the shared list
        (every resume appends), and a wake/park/crash that advances no
        tape still flips status/resuming/throw_exc, so a stale adopt
        is impossible; anything unverifiable rebuilds as before.  An
        incompatible handoff (different program, or a thread/object
        count mismatch from dynamic spawns past the snapshot depth) is
        silently discarded and the fresh-instance path runs instead.
        """
        r_threads = None
        if reuse is not None:
            r_program, r_instance, r_threads_cand = reuse
            if (
                r_program is snap.program
                and len(r_threads_cand) == len(snap.thread_records)
                and len(r_instance.registry.objects)
                == len(snap.object_states)
            ):
                r_threads = r_threads_cand
        ex = cls.__new__(cls)
        engine = snap.engine.fork()  # fork preserves the backend type
        if r_threads is not None:
            # release_instance guarantees the recycled registry is at
            # its boot size (runtime-creating programs are never pooled)
            instance = r_instance
            boot_objects = len(instance.registry.objects)
        else:
            instance = snap.program.instantiate()
            # build-time objects are present already; the static thread
            # handles are registered in the rebuild loop below
            boot_objects = (
                len(instance.registry.objects) + snap.static_threads
            )
        d = ex.__dict__
        d.update(snap.restore_fields)
        replay_all_tapes = d["_replay_all_tapes"]
        optrie = None
        if _OPCACHE_ON and not replay_all_tapes:
            optrie = instance.optrie
            if optrie is None:
                optrie = instance.optrie = OpTrie()
        d["_optrie"] = optrie
        d["instance"] = instance
        d["_boot_objects"] = boot_objects
        d["engine"] = engine
        d["_clock"] = instance.clock
        d["threads"] = []
        d["schedule"] = list(snap.schedule)
        d["trace"] = list(snap.trace)
        d["_spawn_origin"] = dict(snap.spawn_origin)
        d["guest_failures"] = list(snap.guest_failures)
        d["_exit_events"] = dict(snap.exit_events)
        d["_runnable"] = set(snap.runnable)
        d["_timed_parked"] = set()
        registry = ex.instance.registry
        static = ex.instance.threads
        # executed SPAWN ops per fast-forwarded parent, to hand fresh
        # (fn, args) closures to dynamically spawned children (parents
        # always have smaller tids, so one tid-ordered pass suffices).
        # Thread adoption is off for snapshots with dynamic spawns: an
        # adopted parent's live generator cannot re-surrender its SPAWN
        # ops, and a rebuilt child would need them.
        spawn_origin = snap.spawn_origin
        spawn_ops: Dict[int, List[Op]] = {}
        adopt = r_threads if not spawn_origin else None
        runnable_status = _Status.RUNNABLE
        waiting_status = _Status.WAITING
        own_threads = ex.threads
        own_append = own_threads.append
        fast_forward = cls._fast_forward
        objects = registry.objects
        timed_parked = ex._timed_parked
        guest_new = _GuestThread.__new__
        trie_roots = optrie.roots if optrie is not None else None
        for tid, rec in enumerate(snap.thread_records):
            if r_threads is not None:
                rt = r_threads[tid]
                if (
                    adopt is not None
                    and rt.tape is rec.tape
                    and rec.tape is not None
                    and len(rt.tape) == rec.tape_len
                    and rt.tindex == rec.tindex
                    and rt.status == rec.status
                    and rt.resuming == rec.resuming
                    and rt.crashed == rec.crashed
                    and rt.exit_recorded == rec.exit_recorded
                    and rt.throw_exc is rec.throw_exc
                    and rt.deadline == rec.deadline
                    and rt.wake_value == rec.wake_value
                    and (
                        rt.parked_on.oid
                        if rt.parked_on is not None else None
                    ) == rec.parked_on_oid
                    and (
                        rt.wait_mutex.oid
                        if rt.wait_mutex is not None else None
                    ) == rec.wait_mutex_oid
                ):
                    own_append(rt)
                    if rec.deadline is not None and \
                            rec.status == waiting_status:
                        timed_parked.add(tid)
                    continue
                handle = rt.handle
            else:
                # handles registered in tid order reproduce the
                # original oid assignment (spawn order is tid order); a
                # reused instance already carries them at the same oids
                handle = ThreadHandle(registry, tid)
            t = guest_new(_GuestThread)
            t.tid = tid
            t.name = rec.name
            t.gen = None
            t.handle = handle
            status = t.status = rec.status
            t.tindex = rec.tindex
            resuming = t.resuming = rec.resuming
            t.exit_recorded = rec.exit_recorded
            t.crashed = rec.crashed
            t.spawn_count = rec.spawn_count
            throw_exc = t.throw_exc = rec.throw_exc
            deadline = t.deadline = rec.deadline
            t.wake_value = rec.wake_value
            t.trie_node = None
            t.pinfo = None
            pending: Optional[Op] = None
            if rec.needs_replay:
                node = (
                    trie_roots.get(tid)
                    if trie_roots is not None
                    and tid < snap.static_threads else None
                )
                if node is not None:
                    # op-cache walk: one dict hop per recorded send
                    # instead of a generator resume; collects executed
                    # SPAWN ops exactly like fast-forward does (each
                    # node's op precedes the send that follows it)
                    tape = rec.tape
                    collect = rec.spawn_count > 0
                    spawns = []
                    for i in range(rec.tape_len):
                        if collect and node[0].kind is _SPAWN:
                            spawns.append(node[0])
                        children = node[1]
                        child = None
                        if children is not None:
                            k = trie_key(tape[i])
                            if k is not UNKEYABLE:
                                child = children.get(k)
                        if child is None:
                            node = None
                            break
                        node = child
                if node is not None:
                    pending = node[0]
                    t.tape = rec.tape[:rec.tape_len]
                    t.trie_node = node
                    if spawn_origin:
                        spawn_ops[tid] = spawns
                else:
                    if tid < snap.static_threads:
                        body, args, _name = static[tid]
                    else:
                        ptid, ordinal = spawn_origin[tid]
                        body, args = spawn_ops[ptid][ordinal].arg
                    t.gen = body(_thread_api(tid), *args)
                    pending, spawns, t.tape = fast_forward(
                        t.gen, rec.tape, rec.tape_len, handle,
                        rec.spawn_count > 0,
                    )
                    if spawn_origin:
                        spawn_ops[tid] = spawns
            else:
                # finished, spawned nothing: the generator is dead
                # weight and the tape is never replayed again
                t.tape = rec.tape
            # resolved only after this thread's fast-forward: programs
            # that create objects at runtime (the shim frontend) have an
            # empty registry until the creating thread's tape replays,
            # and the setup-phase rule puts every creation on a tid no
            # greater than any waiter's
            wait_mutex = t.wait_mutex = (
                objects[rec.wait_mutex_oid]
                if rec.wait_mutex_oid is not None else None
            )
            t.parked_on = (
                objects[rec.parked_on_oid]
                if rec.parked_on_oid is not None else None
            )
            if status != runnable_status:
                t.pending = None          # finished, or parked on a CV
                if deadline is not None and status == waiting_status:
                    timed_parked.add(tid)
            elif resuming:
                # the synthesized post-notify re-acquire of the wait
                # mutex (never a generator yield)
                t.pending = Op(_LOCK, wait_mutex)
            elif throw_exc is not None:
                # crashed by fx_throw, EXIT not yet executed: the
                # pending EXIT is resynthesized from the recorded error
                # (the rebuilt generator, if any, stays at its final
                # yield and is never resumed)
                t.pending = Op(_EXIT, handle, throw_exc)
            else:
                if (
                    pending is not None
                    and pending.target is None
                    and (pending.kind is _SLEEP
                         or pending.kind is _TIMER_TICK)
                ):
                    # fast-forward bypasses _advance: re-point the
                    # fresh SLEEP/TIMER_TICK op at this instance's
                    # clock (the deadline is restored from the record)
                    pending.target = instance.clock
                t.pending = pending
            own_append(t)
        if len(objects) != len(snap.object_states):
            raise SchedulerError(
                f"snapshot/registry mismatch: {len(snap.object_states)} "
                f"captured states for {len(objects)} objects"
            )
        for obj, state in zip(objects, snap.object_states):
            obj.restore_state(state)
        if ex.fast_replay and ex.engine.backend in _SPECIALIZED_BACKENDS:
            install_specialized_step(ex)
        return ex

    # ------------------------------------------------------------------
    # Termination
    def is_done(self) -> bool:
        """True when the run is over (normally or abnormally).  Detects
        and records deadlock as a side effect."""
        if self.error is not None or self.truncated:
            return True
        if not self._unfinished:
            return True
        if self._num_events >= self.max_events:
            self.truncated = True
            return True
        if not self.enabled():
            self.error = DeadlockError(self.runnable_unfinished())
            return True
        return False

    def finish(self) -> TraceResult:
        """Package the result; the run must be done."""
        if not self.is_done():
            raise SchedulerError("finish() called before the run is done")
        # Per-thread progress carries each thread's own crash type, so
        # the digest is invariant under commuting independent crash
        # EXITs (two threads dying of different guest errors reach the
        # same terminal state whichever EXIT the schedule ran first).
        progress = tuple(
            (
                t.tindex,
                type(t.throw_exc).__name__ if t.crashed else None,
            )
            for t in self.threads
        )
        # The reported representative failure is likewise deterministic
        # per equivalence class: executor-level errors (deadlock) win,
        # then the lowest-tid crashed thread's guest error.
        error = self.error
        if error is None and self.guest_failures:
            error = next(t.throw_exc for t in self.threads if t.crashed)
        state_hash = compute_state_hash(
            self.instance.registry, progress, self.error, self.truncated
        )
        return TraceResult(
            program_name=self.program.name,
            schedule=list(self.schedule),
            events=list(self.trace),
            hbr_fp=self.engine.hbr_fingerprint(),
            lazy_fp=self.engine.lazy_fingerprint(),
            state_hash=state_hash,
            error=error,
            final_state=(
                {} if self.fast_replay
                else describe_state(self.instance.registry)
            ),
            truncated=self.truncated,
            event_count=self._num_events,
        )

    def close(self) -> None:
        """Explicitly tear down guest generators (abandoned runs).

        Dropping an unfinished executor leaves guests suspended at a
        yield; CPython closes them at collection time, and a guest
        parked inside an instrumented ``with`` block re-yields during
        ``GeneratorExit`` cleanup (the shim ``__exit__`` releases the
        lock through the op protocol), which the interpreter reports
        as an ignored ``GeneratorExit`` on stderr.  Closing here
        retries until the unwinding completes, so abandoned replays
        stay quiet.  The executor must not be stepped — or recycled
        into a pool — afterwards.
        """
        for t in self.threads:
            gen = t.gen
            if gen is None:
                continue
            # walk the yield-from delegation chain (shim guests run
            # inside wrapper generators): closing only the outermost
            # would orphan the suspended user generator, whose own
            # GC-time close then re-raises the noise this silences
            chain = [gen]
            while True:
                sub = getattr(chain[-1], "gi_yieldfrom", None)
                if sub is None or not hasattr(sub, "close"):
                    break
                chain.append(sub)
            for g in reversed(chain):
                # each instrumented with-block level re-yields once
                # while unwinding; the bound is paranoia against a
                # guest that swallows GeneratorExit forever
                for _ in range(16):
                    try:
                        g.close()
                        break
                    except RuntimeError:
                        continue
                    except Exception:
                        break  # guest cleanup raised; run is discarded

    # ------------------------------------------------------------------
    # Invariant checking (tests only)
    def _recomputed_enabled(self) -> Set[int]:
        """Reference enabledness, recomputed from scratch — the tests
        cross-check the memoised/incremental sets against this."""
        self._admit_barriers()
        return {
            t.tid
            for t in self.threads
            if (
                t.status == _Status.RUNNABLE
                and t.pending is not None
                and (t.pending.timeout is not None or self._op_enabled(t))
            )
            or (t.status == _Status.WAITING and t.deadline is not None)
        }
