"""The stepwise executor: the heart of the SCT runtime.

An :class:`Executor` owns one fresh :class:`ProgramInstance` and drives
its guest generators one visible operation at a time:

* every thread always has (at most) one *pending* operation — the value
  of its most recent ``yield`` — giving the one-op lookahead DPOR needs;
* :meth:`enabled` reports which pending operations can execute now;
* :meth:`step` executes one of them, records the :class:`Event`,
  updates both happens-before clock engines, resumes the generator, and
  captures its next pending op;
* when no thread is enabled and some are unfinished, the run ends in a
  recorded :class:`~repro.errors.DeadlockError`.

Explorers re-create an Executor per schedule (stateless exploration
with replay), so this class has no reset logic.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.events import Event, Op, OpKind
from ..core.hb import DualClockEngine
from ..errors import (
    DeadlockError,
    GuestError,
    InvalidOpError,
    SchedulerError,
)
from .barrier import Barrier
from .objects import ThreadHandle
from .program import Program, ProgramInstance
from .state import compute_state_hash, describe_state
from .thread_api import ThreadAPI
from .trace import PendingInfo, TraceResult

DEFAULT_MAX_EVENTS = 20_000


class _Status(enum.IntEnum):
    RUNNABLE = 0
    WAITING = 1   # parked on a condition variable
    FINISHED = 2


class _GuestThread:
    __slots__ = (
        "tid", "name", "gen", "pending", "status", "tindex",
        "handle", "wait_mutex", "resuming", "exit_recorded", "crashed",
    )

    def __init__(self, tid: int, name: str, gen, handle: ThreadHandle) -> None:
        self.tid = tid
        self.name = name
        self.gen = gen
        self.pending: Optional[Op] = None
        self.status = _Status.RUNNABLE
        self.tindex = 0
        self.handle = handle
        self.wait_mutex = None        # mutex to re-acquire after a wait
        self.resuming = False         # pending op is the implicit re-lock
        self.exit_recorded = False
        self.crashed = False          # terminated by a guest assertion


class Executor:
    """Stepwise execution of one program instance under external control."""

    def __init__(
        self,
        program: Program,
        max_events: int = DEFAULT_MAX_EVENTS,
        canonical: bool = False,
    ) -> None:
        self.program = program
        self.instance: ProgramInstance = program.instantiate()
        self.engine = DualClockEngine(canonical=canonical)
        self.max_events = max_events
        self.trace: List[Event] = []
        self.schedule: List[int] = []
        self.threads: List[_GuestThread] = []
        self.error: Optional[GuestError] = None  # deadlock / fatal errors
        self.guest_failures: List[GuestError] = []  # per-thread crashes
        self.truncated = False
        self._exit_events: Dict[int, Event] = {}

        for body, args, name in self.instance.threads:
            self._create_thread(body, args, name)

    # ------------------------------------------------------------------
    # Thread management
    def _create_thread(self, body: Callable, args: Tuple, name: str) -> _GuestThread:
        tid = len(self.threads)
        handle = ThreadHandle(self.instance.registry, tid)
        api = ThreadAPI(tid)
        gen = body(api, *args)
        t = _GuestThread(tid, name or f"T{tid}", gen, handle)
        self.threads.append(t)
        self.engine.register_thread(tid)
        self._advance(t, None, first=True)
        return t

    def _advance(self, t: _GuestThread, send_value: Any, first: bool = False) -> None:
        """Resume ``t``'s generator and capture its next pending op."""
        try:
            op = next(t.gen) if first else t.gen.send(send_value)
        except StopIteration:
            t.pending = Op(OpKind.EXIT, t.handle)
            return
        except GuestError as exc:
            # A guest assertion failure crashes only this thread: its
            # death becomes an ordinary EXIT event (carrying the error),
            # and the other threads keep running.  A global abort would
            # make terminal states depend on where *concurrent* threads
            # happened to be, which breaks the trace-equivalence
            # arguments every POR strategy relies on.
            t.pending = Op(OpKind.EXIT, t.handle, exc)
            return
        if not isinstance(op, Op):
            raise InvalidOpError(
                f"thread {t.name} yielded {op!r}; guest threads must yield "
                f"Op values built with the ThreadAPI"
            )
        t.pending = op

    # ------------------------------------------------------------------
    # Enabledness
    def _admit_barriers(self) -> None:
        """Deterministic pre-pass: admit full barrier cohorts."""
        pending_by_barrier: Dict[int, List[int]] = {}
        barriers: Dict[int, Barrier] = {}
        for t in self.threads:
            op = t.pending
            if (
                t.status == _Status.RUNNABLE
                and op is not None
                and op.kind == OpKind.BARRIER_WAIT
                and t.tid not in op.target.admitted
            ):
                pending_by_barrier.setdefault(op.target.oid, []).append(t.tid)
                barriers[op.target.oid] = op.target
        for oid, tids in pending_by_barrier.items():
            b = barriers[oid]
            # only threads of the *new* generation count: threads still in
            # b.admitted are finishing the previous one
            if len(tids) >= b.parties:
                b.admit(tids[: b.parties])

    def _op_enabled(self, t: _GuestThread) -> bool:
        op = t.pending
        kind = op.kind
        if kind == OpKind.LOCK:
            return op.target.can_lock()
        if kind == OpKind.READ:
            pred = op.arg2
            if pred is not None:  # await_value
                return bool(pred(op.target.get(op.arg)))
            return True
        if kind == OpKind.SEM_ACQUIRE:
            return op.target.can_acquire()
        if kind == OpKind.JOIN:
            target = op.arg
            return (
                0 <= target < len(self.threads)
                and self.threads[target].status == _Status.FINISHED
            )
        if kind == OpKind.BARRIER_WAIT:
            return op.target.can_pass(t.tid)
        if kind == OpKind.RLOCK:
            return op.target.can_rlock(t.tid)
        if kind == OpKind.WLOCK:
            return op.target.can_wlock(t.tid)
        return True

    def enabled(self) -> List[int]:
        """Sorted tids whose pending operation can execute now."""
        if self.error is not None or self.truncated:
            return []
        self._admit_barriers()
        return [
            t.tid
            for t in self.threads
            if t.status == _Status.RUNNABLE
            and t.pending is not None
            and self._op_enabled(t)
        ]

    def runnable_unfinished(self) -> List[int]:
        """Tids of threads that have not finished (enabled or blocked)."""
        return [t.tid for t in self.threads if t.status != _Status.FINISHED]

    # ------------------------------------------------------------------
    # DPOR lookahead
    def pending_info(self, tid: int) -> Optional[PendingInfo]:
        """The pending operation of ``tid`` as location data, or None for
        finished/parked threads."""
        t = self.threads[tid]
        if t.pending is None:
            return None
        op = t.pending
        oid, key = self._op_location(t, op)
        released = op.arg2.oid if op.kind == OpKind.WAIT else None
        return PendingInfo(
            tid=tid,
            kind=int(op.kind),
            oid=oid,
            key=key,
            enabled=self._op_enabled(t) and t.status == _Status.RUNNABLE,
            released_mutex_oid=released,
        )

    def all_pending_infos(self) -> List[PendingInfo]:
        self._admit_barriers()
        infos = []
        for t in self.threads:
            info = self.pending_info(t.tid)
            if info is not None:
                infos.append(info)
        return infos

    @staticmethod
    def _op_location(t: _GuestThread, op: Op) -> Tuple[int, Any]:
        kind = op.kind
        if kind in (OpKind.READ, OpKind.WRITE, OpKind.RMW):
            return op.target.oid, op.arg
        if kind == OpKind.YIELD or kind == OpKind.SPAWN:
            return -1, None
        if kind == OpKind.JOIN:
            return -2, op.arg  # resolved to the handle oid at execution
        if kind == OpKind.EXIT:
            return op.target.oid, None
        return op.target.oid, None

    # ------------------------------------------------------------------
    # Stepping
    def step(self, tid: int) -> Event:
        """Execute ``tid``'s pending operation; returns the new event."""
        if self.error is not None or self.truncated:
            raise SchedulerError("execution already terminated")
        t = self.threads[tid]
        if t.status != _Status.RUNNABLE or t.pending is None:
            raise SchedulerError(f"thread {tid} has no pending operation")
        self._admit_barriers()
        if not self._op_enabled(t):
            raise SchedulerError(f"thread {tid} is not enabled")
        if len(self.trace) >= self.max_events:
            self.truncated = True
            raise SchedulerError(
                f"schedule exceeded max_events={self.max_events}"
            )

        op = t.pending
        kind = op.kind
        value: Any = None
        released_mutex_oid: Optional[int] = None
        woken: List[_GuestThread] = []
        spawned: Optional[_GuestThread] = None
        oid, key = self._op_location(t, op)

        try:
            if kind == OpKind.READ:
                value = op.target.get(op.arg)
            elif kind == OpKind.WRITE:
                op.target.set(op.arg, op.arg2)
                value = op.arg2
            elif kind == OpKind.RMW:
                old = op.target.get(op.arg)
                new, value = op.arg2(old)
                op.target.set(op.arg, new)
            elif kind == OpKind.LOCK:
                op.target.do_lock(tid)
            elif kind == OpKind.UNLOCK:
                op.target.do_unlock(tid)
            elif kind == OpKind.WAIT:
                mutex = op.arg2
                if mutex.owner != tid:
                    raise InvalidOpError(
                        f"wait on {op.target.name}: T{tid} does not hold "
                        f"{mutex.name}"
                    )
                mutex.do_unlock(tid)
                op.target.add_waiter(tid)
                released_mutex_oid = mutex.oid
                t.wait_mutex = mutex
                t.status = _Status.WAITING
            elif kind == OpKind.NOTIFY:
                woken = [self.threads[w] for w in op.target.pop_one()]
            elif kind == OpKind.NOTIFY_ALL:
                woken = [self.threads[w] for w in op.target.pop_all()]
            elif kind == OpKind.SEM_ACQUIRE:
                op.target.do_acquire()
            elif kind == OpKind.SEM_RELEASE:
                op.target.do_release()
            elif kind == OpKind.BARRIER_WAIT:
                value = op.target.do_pass(tid)
            elif kind == OpKind.RLOCK:
                op.target.do_rlock(tid)
            elif kind == OpKind.RUNLOCK:
                op.target.do_runlock(tid)
            elif kind == OpKind.WLOCK:
                op.target.do_wlock(tid)
            elif kind == OpKind.WUNLOCK:
                op.target.do_wunlock(tid)
            elif kind == OpKind.SPAWN:
                fn, args = op.arg
                spawned = self._create_thread(fn, args, "")
                value = spawned.tid
                oid, key = spawned.handle.oid, None
            elif kind == OpKind.JOIN:
                target = self.threads[op.arg]
                oid, key = target.handle.oid, None
            elif kind == OpKind.EXIT:
                if op.arg is not None:  # thread died on a guest assertion
                    t.crashed = True
                    self.guest_failures.append(op.arg)
                    value = op.arg  # surfaced by trace renderers
            elif kind == OpKind.YIELD:
                pass
            else:  # pragma: no cover - all kinds handled above
                raise InvalidOpError(f"unhandled op kind {kind!r}")
        except GuestError as exc:  # pragma: no cover - defensive
            self.error = exc
            t.status = _Status.FINISHED
            t.pending = None
            raise

        event = Event(
            index=len(self.trace),
            tid=tid,
            tindex=t.tindex,
            kind=kind,
            oid=oid,
            key=key,
            value=value,
            released_mutex_oid=released_mutex_oid,
        )
        t.tindex += 1
        self.engine.on_event(event)
        self.trace.append(event)
        self.schedule.append(tid)

        # Post-event bookkeeping that needs the stamped clocks.
        if spawned is not None:
            # child happens-after the spawn event (in both relations)
            self.engine.register_thread(spawned.tid, event)
        for w in woken:
            # notify -> wakeup edge, in both relations
            self.engine.add_release_edge(event, w.tid)
            w.status = _Status.RUNNABLE
            w.resuming = True
            w.pending = Op(OpKind.LOCK, w.wait_mutex)

        # Resume the generator (or finalise the thread).
        if kind == OpKind.WAIT:
            t.pending = None  # parked until notified
        elif kind == OpKind.EXIT:
            t.status = _Status.FINISHED
            t.pending = None
            t.exit_recorded = True
            self._exit_events[tid] = event
        elif t.resuming and kind == OpKind.LOCK:
            # the implicit re-acquire after a wait: now the guest's
            # `yield api.wait(...)` finally returns
            t.resuming = False
            t.wait_mutex = None
            self._advance(t, None)
        else:
            self._advance(t, value)
        return event

    # ------------------------------------------------------------------
    # Termination
    def is_done(self) -> bool:
        """True when the run is over (normally or abnormally).  Detects
        and records deadlock as a side effect."""
        if self.error is not None or self.truncated:
            return True
        unfinished = self.runnable_unfinished()
        if not unfinished:
            return True
        if len(self.trace) >= self.max_events:
            self.truncated = True
            return True
        if not self.enabled():
            self.error = DeadlockError(unfinished)
            return True
        return False

    def finish(self) -> TraceResult:
        """Package the result; the run must be done."""
        if not self.is_done():
            raise SchedulerError("finish() called before the run is done")
        progress = tuple(
            (t.tindex, t.crashed) for t in self.threads
        )
        error = self.error or (
            self.guest_failures[0] if self.guest_failures else None
        )
        state_hash = compute_state_hash(
            self.instance.registry, progress, error, self.truncated
        )
        return TraceResult(
            program_name=self.program.name,
            schedule=list(self.schedule),
            events=list(self.trace),
            hbr_fp=self.engine.hbr_fingerprint(),
            lazy_fp=self.engine.lazy_fingerprint(),
            state_hash=state_hash,
            error=error,
            final_state=describe_state(self.instance.registry),
            truncated=self.truncated,
        )
