"""The stepwise executor: the heart of the SCT runtime.

An :class:`Executor` owns one fresh :class:`ProgramInstance` and drives
its guest generators one visible operation at a time:

* every thread always has (at most) one *pending* operation — the value
  of its most recent ``yield`` — giving the one-op lookahead DPOR needs;
* :meth:`enabled` reports which pending operations can execute now;
* :meth:`step` executes one of them, records the :class:`Event`,
  updates both happens-before clock engines, resumes the generator, and
  captures its next pending op;
* when no thread is enabled and some are unfinished, the run ends in a
  recorded :class:`~repro.errors.DeadlockError`.

Explorers re-create an Executor per schedule (stateless exploration
with replay), so this class has no reset logic.

Hot-path machinery (this class runs millions of steps per campaign):

* the *runnable* thread set is maintained incrementally on status
  transitions (spawn, exit, wait, wake) — ``enabled()`` never scans
  finished or parked threads — and its result is memoised until the
  next step mutates state, so the per-scheduling-point enabledness
  test runs exactly once however many times ``is_done``/``enabled``
  are consulted.  (A finer-grained per-object watcher scheme was
  measured and *lost* to this design at realistic thread counts — in
  lock-heavy programs every thread watches the same mutex, so the
  bookkeeping outweighs the rescan of a handful of runnable threads.)
* the barrier admission pre-pass is skipped entirely unless some
  runnable thread actually pends a ``BARRIER_WAIT`` (counter maintained
  as pending ops change);
* ``fast_replay=True`` selects a reduced-bookkeeping mode for callers
  that only consume fingerprints, state hashes and schedule/event
  counts (the DFS/caching/bounded/randomised explorers): no
  :class:`Event` objects are materialised, no trace list is kept, and
  ``finish()`` skips ``describe_state``.  Fingerprints, state hashes,
  schedules and error outcomes are guaranteed identical to the default
  mode — the equivalence suite asserts this for every program in
  ``repro.suite``;
* :meth:`replay_prefix` re-executes a known-feasible prefix without
  re-validating enabledness at every step;
* ``snapshots=True`` additionally records each thread's *send tape*
  (the values its generator has received), enabling
  :meth:`snapshot`/:meth:`fork`/:meth:`from_snapshot` — copy-on-write
  executor snapshots that let explorers resume from a cached branch
  point instead of replaying the whole prefix (see
  :mod:`repro.runtime.snapshot` for the design and its guarantees).
"""

from __future__ import annotations

import enum
from bisect import insort
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.events import Event, Op, OpKind
from ..core.hb import DualClockEngine
from ..errors import (
    DeadlockError,
    GuestError,
    InvalidOpError,
    SchedulerError,
)
from .barrier import Barrier
from .objects import ThreadHandle
from .program import Program, ProgramInstance
from .snapshot import ExecutorSnapshot, ThreadRecord
from .state import compute_state_hash, describe_state
from .thread_api import ThreadAPI
from .trace import PendingInfo, TraceResult

DEFAULT_MAX_EVENTS = 20_000

#: Kinds whose execution can change *another* thread's enabledness
#: (releases, acquisitions, lifecycle).  READ/YIELD/JOIN never do;
#: WRITE/RMW only when some thread pends an ``await_value`` predicate
#: (tracked by a counter).  Steps of non-disturbing kinds patch the
#: memoised enabled list instead of invalidating it.
_DISTURBING = tuple(
    k not in (OpKind.READ, OpKind.WRITE, OpKind.RMW, OpKind.YIELD,
              OpKind.JOIN)
    for k in OpKind
)

# OpKind members as module globals: the step dispatch compares against
# these up to a dozen times per event, and a global load is cheaper
# than an enum class attribute lookup.
_READ = OpKind.READ
_WRITE = OpKind.WRITE
_RMW = OpKind.RMW
_LOCK = OpKind.LOCK
_UNLOCK = OpKind.UNLOCK
_WAIT = OpKind.WAIT
_NOTIFY = OpKind.NOTIFY
_NOTIFY_ALL = OpKind.NOTIFY_ALL
_SEM_ACQUIRE = OpKind.SEM_ACQUIRE
_SEM_RELEASE = OpKind.SEM_RELEASE
_BARRIER_WAIT = OpKind.BARRIER_WAIT
_SPAWN = OpKind.SPAWN
_JOIN = OpKind.JOIN
_EXIT = OpKind.EXIT
_RLOCK = OpKind.RLOCK
_RUNLOCK = OpKind.RUNLOCK
_WLOCK = OpKind.WLOCK
_WUNLOCK = OpKind.WUNLOCK
_YIELD = OpKind.YIELD


class _Status(enum.IntEnum):
    RUNNABLE = 0
    WAITING = 1   # parked on a condition variable
    FINISHED = 2


class _GuestThread:
    __slots__ = (
        "tid", "name", "gen", "pending", "status", "tindex",
        "handle", "wait_mutex", "resuming", "exit_recorded", "crashed",
        "tape", "spawn_count",
    )

    def __init__(self, tid: int, name: str, gen, handle: ThreadHandle) -> None:
        self.tid = tid
        self.name = name
        self.gen = gen
        self.pending: Optional[Op] = None
        self.status = _Status.RUNNABLE
        self.tindex = 0
        self.handle = handle
        self.wait_mutex = None        # mutex to re-acquire after a wait
        self.resuming = False         # pending op is the implicit re-lock
        self.exit_recorded = False
        self.crashed = False          # terminated by a guest assertion
        self.tape: Optional[List[Any]] = None  # send-value record (snapshots)
        self.spawn_count = 0          # executed SPAWNs (snapshot bookkeeping)


class Executor:
    """Stepwise execution of one program instance under external control."""

    def __init__(
        self,
        program: Program,
        max_events: int = DEFAULT_MAX_EVENTS,
        canonical: bool = False,
        fast_replay: bool = False,
        snapshots: bool = False,
    ) -> None:
        self.program = program
        self.instance: ProgramInstance = program.instantiate()
        self.engine = DualClockEngine(canonical=canonical)
        self.max_events = max_events
        self.fast_replay = fast_replay
        #: record per-thread send tapes so snapshot()/fork() work; the
        #: recording itself never changes behaviour (one list append
        #: per generator resume)
        self._record = snapshots
        self._spawn_origin: Dict[int, Tuple[int, int]] = {}
        self.trace: List[Event] = []
        self.schedule: List[int] = []
        self.threads: List[_GuestThread] = []
        self.error: Optional[GuestError] = None  # deadlock / fatal errors
        self.guest_failures: List[GuestError] = []  # per-thread crashes
        self.truncated = False
        self._exit_events: Dict[int, Event] = {}
        self._num_events = 0
        # incremental scheduling state (see module docstring)
        self._runnable: Set[int] = set()       # tids with status RUNNABLE
        self._runnable_sorted: Optional[List[int]] = None
        self._unfinished = 0                   # threads not FINISHED
        self._barrier_pending = 0              # runnable pending BARRIER_WAITs
        self._pred_watch = 0                   # pending await_value READs
        # memoised enabled list; membership tests run on the list
        # itself — linear, but enabled sets are tiny and a C-level list
        # scan beats building a set on every rebuild
        self._enabled_cache: Optional[List[int]] = None

        self._static_threads = len(self.instance.threads)
        self.engine.reserve(self._static_threads)
        for body, args, name in self.instance.threads:
            self._create_thread(body, args, name)

    @property
    def num_events(self) -> int:
        """Events executed so far (= ``len(trace)`` in default mode)."""
        return self._num_events

    # ------------------------------------------------------------------
    # Thread management
    def _create_thread(self, body: Callable, args: Tuple, name: str) -> _GuestThread:
        tid = len(self.threads)
        handle = ThreadHandle(self.instance.registry, tid)
        api = ThreadAPI(tid)
        gen = body(api, *args)
        t = _GuestThread(tid, name or f"T{tid}", gen, handle)
        if self._record:
            t.tape = []
        self.threads.append(t)
        self._runnable.add(tid)
        self._runnable_sorted = None
        self._unfinished += 1
        if tid >= self._static_threads:
            self.engine.register_thread(tid)  # reserve() covered the rest
        self._advance(t, None, first=True)
        return t

    def _advance(self, t: _GuestThread, send_value: Any, first: bool = False) -> None:
        """Resume ``t``'s generator and capture its next pending op."""
        if t.tape is not None and not first:
            # the tape records the value even when the send terminates
            # the generator: fast-forward re-feeds it to reproduce the
            # same StopIteration/GuestError
            t.tape.append(send_value)
        try:
            op = next(t.gen) if first else t.gen.send(send_value)
        except StopIteration:
            t.pending = Op(OpKind.EXIT, t.handle)
            return
        except GuestError as exc:
            # A guest assertion failure crashes only this thread: its
            # death becomes an ordinary EXIT event (carrying the error),
            # and the other threads keep running.  A global abort would
            # make terminal states depend on where *concurrent* threads
            # happened to be, which breaks the trace-equivalence
            # arguments every POR strategy relies on.
            t.pending = Op(OpKind.EXIT, t.handle, exc)
            return
        if not isinstance(op, Op):
            raise InvalidOpError(
                f"thread {t.name} yielded {op!r}; guest threads must yield "
                f"Op values built with the ThreadAPI"
            )
        t.pending = op
        kind = op.kind
        if kind is _BARRIER_WAIT:
            self._barrier_pending += 1
        elif kind is _READ and op.arg2 is not None:
            self._pred_watch += 1

    # ------------------------------------------------------------------
    # Enabledness
    def _admit_barriers(self) -> None:
        """Deterministic pre-pass: admit full barrier cohorts.  Skipped
        entirely when no runnable thread is pending a barrier wait."""
        if not self._barrier_pending:
            return
        pending_by_barrier: Dict[int, List[int]] = {}
        barriers: Dict[int, Barrier] = {}
        for t in self.threads:
            op = t.pending
            if (
                t.status == _Status.RUNNABLE
                and op is not None
                and op.kind == OpKind.BARRIER_WAIT
                and t.tid not in op.target.admitted
            ):
                pending_by_barrier.setdefault(op.target.oid, []).append(t.tid)
                barriers[op.target.oid] = op.target
        for oid, tids in pending_by_barrier.items():
            b = barriers[oid]
            # only threads of the *new* generation count: threads still in
            # b.admitted are finishing the previous one
            if len(tids) >= b.parties:
                b.admit(tids[: b.parties])

    def _op_enabled(self, t: _GuestThread) -> bool:
        op = t.pending
        kind = op.kind
        if kind == OpKind.LOCK:
            return op.target.can_lock()
        if kind == OpKind.READ:
            pred = op.arg2
            if pred is not None:  # await_value
                return bool(pred(op.target.get(op.arg)))
            return True
        if kind == OpKind.SEM_ACQUIRE:
            return op.target.can_acquire()
        if kind == OpKind.JOIN:
            target = op.arg
            return (
                0 <= target < len(self.threads)
                and self.threads[target].status == _Status.FINISHED
            )
        if kind == OpKind.BARRIER_WAIT:
            return op.target.can_pass(t.tid)
        if kind == OpKind.RLOCK:
            return op.target.can_rlock(t.tid)
        if kind == OpKind.WLOCK:
            return op.target.can_wlock(t.tid)
        return True

    def enabled(self) -> List[int]:
        """Sorted tids whose pending operation can execute now.

        Memoised until the next step; only *runnable* threads are ever
        tested (the runnable set is maintained incrementally on status
        transitions).  Callers must not mutate the returned list.
        """
        # terminal states win over any memoised list: error/truncation
        # can be set between steps (is_done, guest exceptions) without
        # passing through the invalidation in step()
        if self.error is not None or self.truncated:
            return []
        cached = self._enabled_cache
        if cached is not None:
            return cached
        self._admit_barriers()
        runnable = self._runnable_sorted
        if runnable is None:
            runnable = self._runnable_sorted = sorted(self._runnable)
        threads = self.threads
        op_enabled = self._op_enabled
        result = [tid for tid in runnable if op_enabled(threads[tid])]
        self._enabled_cache = result
        return result

    def runnable_unfinished(self) -> List[int]:
        """Tids of threads that have not finished (enabled or blocked)."""
        return [t.tid for t in self.threads if t.status != _Status.FINISHED]

    # ------------------------------------------------------------------
    # DPOR lookahead
    def pending_info(self, tid: int) -> Optional[PendingInfo]:
        """The pending operation of ``tid`` as location data, or None for
        finished/parked threads."""
        t = self.threads[tid]
        if t.pending is None:
            return None
        op = t.pending
        oid, key = self._op_location(t, op)
        released = op.arg2.oid if op.kind == OpKind.WAIT else None
        return PendingInfo(
            tid=tid,
            kind=int(op.kind),
            oid=oid,
            key=key,
            enabled=t.status == _Status.RUNNABLE and self._op_enabled(t),
            released_mutex_oid=released,
        )

    def all_pending_infos(self) -> List[PendingInfo]:
        self._admit_barriers()
        infos = []
        for t in self.threads:
            info = self.pending_info(t.tid)
            if info is not None:
                infos.append(info)
        return infos

    @staticmethod
    def _op_location(t: _GuestThread, op: Op) -> Tuple[int, Any]:
        kind = op.kind
        if kind in (OpKind.READ, OpKind.WRITE, OpKind.RMW):
            return op.target.oid, op.arg
        if kind == OpKind.YIELD or kind == OpKind.SPAWN:
            return -1, None
        if kind == OpKind.JOIN:
            return -2, op.arg  # resolved to the handle oid at execution
        if kind == OpKind.EXIT:
            return op.target.oid, None
        return op.target.oid, None

    # ------------------------------------------------------------------
    # Stepping
    def replay_prefix(self, tids: Sequence[int]) -> None:
        """Re-execute a known-feasible prefix of thread choices.

        This is the replay fast path: each step skips the per-step
        enabledness re-validation (the prefix was produced by a previous
        execution of the same deterministic program, so every choice is
        enabled by construction).  Genuine divergence still surfaces as
        an exception from the operation itself.
        """
        for tid in tids:
            self.step(tid, trusted=True)

    def step(self, tid: int, trusted: bool = False) -> Optional[Event]:
        """Execute ``tid``'s pending operation.

        Returns the new :class:`Event`, or ``None`` in ``fast_replay``
        mode (which materialises no events).  ``trusted`` skips the
        enabledness re-check for known-feasible replays.
        """
        if self.error is not None or self.truncated:
            raise SchedulerError("execution already terminated")
        t = self.threads[tid]
        if t.status != _Status.RUNNABLE or t.pending is None:
            raise SchedulerError(f"thread {tid} has no pending operation")
        enabled_cache = self._enabled_cache
        if trusted:
            self._admit_barriers()
        elif enabled_cache is not None:
            if tid not in enabled_cache:
                raise SchedulerError(f"thread {tid} is not enabled")
        else:
            self._admit_barriers()
            if not self._op_enabled(t):
                raise SchedulerError(f"thread {tid} is not enabled")
        if self._num_events >= self.max_events:
            self.truncated = True
            self._enabled_cache = None
            raise SchedulerError(
                f"schedule exceeded max_events={self.max_events}"
            )

        op = t.pending
        kind = op.kind
        value: Any = None
        released_mutex_oid: Optional[int] = None
        woken: Optional[List[_GuestThread]] = None
        spawned: Optional[_GuestThread] = None
        # _op_location, inlined (per-step hot path): READ/WRITE/RMW key
        # on (target oid, element); SPAWN/YIELD touch nothing; JOIN is
        # resolved to the joined thread's handle in its branch below.
        if kind is _READ or kind is _WRITE or kind is _RMW:
            oid, key = op.target.oid, op.arg
        elif kind is _YIELD or kind is _SPAWN or kind is _JOIN:
            oid, key = -1, None
        else:
            oid, key = op.target.oid, None
        if kind is _BARRIER_WAIT:
            self._barrier_pending -= 1
        elif kind is _READ and op.arg2 is not None:
            self._pred_watch -= 1
        # Conditional invalidation: a non-disturbing op can only change
        # the *stepping* thread's enabledness, so the memoised enabled
        # list survives and gets patched after the generator resumes.
        if _DISTURBING[kind] or (self._pred_watch and (
                kind is _WRITE or kind is _RMW)):
            self._enabled_cache = None
            patch = False
        else:
            patch = self._enabled_cache is not None

        try:
            if kind is _READ:
                value = op.target.get(op.arg)
            elif kind is _WRITE:
                op.target.set(op.arg, op.arg2)
                value = op.arg2
            elif kind is _RMW:
                old = op.target.get(op.arg)
                new, value = op.arg2(old)
                op.target.set(op.arg, new)
            elif kind is _LOCK:
                op.target.do_lock(tid)
            elif kind is _UNLOCK:
                op.target.do_unlock(tid)
            elif kind is _WAIT:
                mutex = op.arg2
                if mutex.owner != tid:
                    raise InvalidOpError(
                        f"wait on {op.target.name}: T{tid} does not hold "
                        f"{mutex.name}"
                    )
                mutex.do_unlock(tid)
                op.target.add_waiter(tid)
                released_mutex_oid = mutex.oid
                t.wait_mutex = mutex
                t.status = _Status.WAITING
                self._runnable.discard(tid)
                self._runnable_sorted = None
            elif kind is _NOTIFY:
                woken = [self.threads[w] for w in op.target.pop_one()]
            elif kind is _NOTIFY_ALL:
                woken = [self.threads[w] for w in op.target.pop_all()]
            elif kind is _SPAWN:
                fn, args = op.arg
                spawned = self._create_thread(fn, args, "")
                value = spawned.tid
                oid = spawned.handle.oid
                if self._record:
                    self._spawn_origin[spawned.tid] = (tid, t.spawn_count)
                    t.spawn_count += 1
            elif kind is _JOIN:
                oid = self.threads[op.arg].handle.oid
            elif kind is _SEM_ACQUIRE:
                op.target.do_acquire()
            elif kind is _SEM_RELEASE:
                op.target.do_release()
            elif kind is _BARRIER_WAIT:
                value = op.target.do_pass(tid)
            elif kind is _RLOCK:
                op.target.do_rlock(tid)
            elif kind is _RUNLOCK:
                op.target.do_runlock(tid)
            elif kind is _WLOCK:
                op.target.do_wlock(tid)
            elif kind is _WUNLOCK:
                op.target.do_wunlock(tid)
            elif kind is _EXIT:
                if op.arg is not None:  # thread died on a guest assertion
                    t.crashed = True
                    self.guest_failures.append(op.arg)
                    value = op.arg  # surfaced by trace renderers
            elif kind is _YIELD:
                pass
            else:  # pragma: no cover - all kinds handled above
                raise InvalidOpError(f"unhandled op kind {kind!r}")
        except GuestError as exc:  # pragma: no cover - defensive
            self.error = exc
            t.status = _Status.FINISHED
            t.pending = None
            self._runnable.discard(tid)
            self._runnable_sorted = None
            self._unfinished -= 1
            self._enabled_cache = None
            raise

        event: Optional[Event] = None
        if self.fast_replay:
            clock, lazy_clock = self.engine.observe(
                tid, kind, oid, key, released_mutex_oid
            )
        else:
            event = Event(
                index=self._num_events,
                tid=tid,
                tindex=t.tindex,
                kind=kind,
                oid=oid,
                key=key,
                value=value,
                released_mutex_oid=released_mutex_oid,
            )
            self.engine.on_event(event)
            clock, lazy_clock = event.clock, event.lazy_clock
            self.trace.append(event)
        t.tindex += 1
        self._num_events += 1
        self.schedule.append(tid)

        # Post-event bookkeeping that needs the stamped clocks.
        if spawned is not None:
            # child happens-after the spawn event (in both relations)
            self.engine.register_thread_clocks(spawned.tid, clock, lazy_clock)
        if woken:
            for w in woken:
                # notify -> wakeup edge, in both relations
                self.engine.add_release_edge_clocks(clock, lazy_clock, w.tid)
                w.status = _Status.RUNNABLE
                w.resuming = True
                w.pending = Op(OpKind.LOCK, w.wait_mutex)
                self._runnable.add(w.tid)
            self._runnable_sorted = None

        # Resume the generator (or finalise the thread).
        if kind is _WAIT:
            t.pending = None  # parked until notified
        elif kind is _EXIT:
            t.status = _Status.FINISHED
            t.pending = None
            t.exit_recorded = True
            self._runnable.discard(tid)
            self._runnable_sorted = None
            self._unfinished -= 1
            if event is not None:
                self._exit_events[tid] = event
        elif t.resuming and kind is _LOCK:
            # the implicit re-acquire after a wait: now the guest's
            # `yield api.wait(...)` finally returns
            t.resuming = False
            t.wait_mutex = None
            self._advance(t, None)
        else:
            self._advance(t, value)

        if patch:
            # Patch the surviving memoised enabled list: only this
            # thread's entry can have changed.  A copy is patched (never
            # the published list — explorers hold references to it).
            np = t.pending
            if np is not None and np.kind is _BARRIER_WAIT:
                # new arrival may complete a cohort: admission needs the
                # full pre-pass, so fall back to invalidation
                self._enabled_cache = None
            else:
                cache = self._enabled_cache
                now = np is not None and self._op_enabled(t)
                if now != (tid in cache):
                    cache = cache.copy()
                    if now:
                        insort(cache, tid)
                    else:
                        cache.remove(tid)
                    self._enabled_cache = cache
        return event

    # ------------------------------------------------------------------
    # Snapshot / fork (see repro.runtime.snapshot for the design)
    def snapshot(self) -> ExecutorSnapshot:
        """Capture the complete executor state between steps.

        O(threads + objects + clock-table entries): thread tapes are
        shared (append-only copy-on-write), the clock engine forks by
        sharing its published tuples, and each shared object contributes
        a few scalars.  Requires ``snapshots=True`` at construction (the
        send tapes must have been recorded from step zero).
        """
        if not self._record:
            raise SchedulerError(
                "snapshot() requires an executor built with snapshots=True"
            )
        finished = _Status.FINISHED
        records = [
            ThreadRecord(
                t.name,
                t.status,
                t.tindex,
                t.resuming,
                t.exit_recorded,
                t.crashed,
                t.wait_mutex.oid if t.wait_mutex is not None else None,
                t.tape,
                len(t.tape),
                t.spawn_count,
                # dead generators are only rebuilt when children need
                # their SPAWN ops' fresh (fn, args) closures
                t.status != finished or t.spawn_count > 0,
            )
            for t in self.threads
        ]
        return ExecutorSnapshot(
            self.program,
            self.max_events,
            self.fast_replay,
            tuple(self.schedule),
            self._num_events,
            self.truncated,
            self.error,
            tuple(self.guest_failures),
            tuple(self.trace),
            dict(self._exit_events),
            records,
            dict(self._spawn_origin),
            [o.snapshot_state() for o in self.instance.registry.objects],
            self.engine.fork(),
            self._barrier_pending,
            self._pred_watch,
            self._unfinished,
            frozenset(self._runnable),
            self._static_threads,
        )

    def fork(self) -> "Executor":
        """An independent executor continuing from the current state
        (equivalent to replaying ``self.schedule`` on a fresh one)."""
        return Executor.from_snapshot(self.snapshot())

    @staticmethod
    def _fast_forward(
        gen,
        tape: Sequence[Any],
        tape_len: int,
        handle: ThreadHandle,
        collect_spawns: bool,
    ) -> Tuple[Op, List[Op], List[Any]]:
        """Re-feed ``tape[:tape_len]`` into a fresh generator.

        Returns ``(final pending op, executed SPAWN ops in order, the
        restored executor's own tape copy)``.  This is the whole
        per-event cost of a snapshot resume, so the common case — a
        thread that never spawned — runs a bare ``gen.send`` loop; the
        per-yield SPAWN scan only runs for threads known to have
        spawned.  The generator legitimately terminates only on the
        *last* re-fed value (the guest is deterministic); anything
        earlier means the snapshot and the program disagree.
        """
        new_tape: List[Any] = tape[:tape_len]  # slice of a list: a copy
        spawns: List[Op] = []
        i = -1
        try:
            op = next(gen)
            if collect_spawns:
                for i, v in enumerate(new_tape):
                    if op.kind is _SPAWN:
                        spawns.append(op)
                    op = gen.send(v)
            else:
                send = gen.send
                for i, v in enumerate(new_tape):
                    op = send(v)
            return op, spawns, new_tape
        except StopIteration:
            if i != tape_len - 1:
                raise SchedulerError(
                    "snapshot tape diverged: generator finished at "
                    f"send {i + 1} of {tape_len}"
                ) from None
            return Op(OpKind.EXIT, handle), spawns, new_tape
        except GuestError as exc:
            if i != tape_len - 1:
                raise SchedulerError(
                    "snapshot tape diverged: guest error at "
                    f"send {i + 1} of {tape_len}"
                ) from exc
            return Op(OpKind.EXIT, handle, exc), spawns, new_tape

    @classmethod
    def from_snapshot(cls, snap: ExecutorSnapshot) -> "Executor":
        """Rebuild a live executor from a snapshot.

        Observably identical to constructing a fresh executor and
        calling ``replay_prefix(snap.schedule)`` — same enabled sets,
        fingerprints, state hashes and subsequent behaviour — but pays
        only one generator resume per recorded send instead of the full
        per-event scheduling/clock pipeline.  A snapshot can be
        restored any number of times.
        """
        ex = cls.__new__(cls)
        ex.program = snap.program
        ex.instance = snap.program.instantiate()
        ex.engine = snap.engine.fork()
        ex.max_events = snap.max_events
        ex.fast_replay = snap.fast_replay
        ex._record = True
        ex._spawn_origin = dict(snap.spawn_origin)
        ex.trace = list(snap.trace)
        ex.schedule = list(snap.schedule)
        ex.threads = []
        ex.error = snap.error
        ex.guest_failures = list(snap.guest_failures)
        ex.truncated = snap.truncated
        ex._exit_events = dict(snap.exit_events)
        ex._num_events = snap.num_events
        ex._runnable = set(snap.runnable)
        ex._runnable_sorted = None
        ex._unfinished = snap.unfinished
        ex._barrier_pending = snap.barrier_pending
        ex._pred_watch = snap.pred_watch
        ex._enabled_cache = None
        ex._static_threads = snap.static_threads
        registry = ex.instance.registry
        static = ex.instance.threads
        # executed SPAWN ops per fast-forwarded parent, to hand fresh
        # (fn, args) closures to dynamically spawned children (parents
        # always have smaller tids, so one tid-ordered pass suffices)
        spawn_ops: Dict[int, List[Op]] = {}
        runnable_status = _Status.RUNNABLE
        for tid, rec in enumerate(snap.thread_records):
            # handles registered in tid order reproduce the original
            # oid assignment (spawn order is tid order)
            handle = ThreadHandle(registry, tid)
            t = _GuestThread.__new__(_GuestThread)
            t.tid = tid
            t.name = rec.name
            t.gen = None
            t.handle = handle
            t.status = rec.status
            t.tindex = rec.tindex
            t.resuming = rec.resuming
            t.exit_recorded = rec.exit_recorded
            t.crashed = rec.crashed
            t.spawn_count = rec.spawn_count
            t.wait_mutex = (
                registry.objects[rec.wait_mutex_oid]
                if rec.wait_mutex_oid is not None else None
            )
            pending: Optional[Op] = None
            if rec.needs_replay:
                if tid < snap.static_threads:
                    body, args, _name = static[tid]
                else:
                    ptid, ordinal = snap.spawn_origin[tid]
                    body, args = spawn_ops[ptid][ordinal].arg
                t.gen = body(ThreadAPI(tid), *args)
                pending, spawns, t.tape = cls._fast_forward(
                    t.gen, rec.tape, rec.tape_len, handle,
                    rec.spawn_count > 0,
                )
                spawn_ops[tid] = spawns
            else:
                # finished, spawned nothing: the generator is dead
                # weight and the tape is never replayed again
                t.tape = rec.tape
            if t.status != runnable_status:
                t.pending = None          # finished, or parked on a CV
            elif t.resuming:
                # the synthesized post-notify re-acquire of the wait
                # mutex (never a generator yield)
                t.pending = Op(OpKind.LOCK, t.wait_mutex)
            else:
                t.pending = pending
            ex.threads.append(t)
        objects = registry.objects
        if len(objects) != len(snap.object_states):
            raise SchedulerError(
                f"snapshot/registry mismatch: {len(snap.object_states)} "
                f"captured states for {len(objects)} objects"
            )
        for obj, state in zip(objects, snap.object_states):
            obj.restore_state(state)
        return ex

    # ------------------------------------------------------------------
    # Termination
    def is_done(self) -> bool:
        """True when the run is over (normally or abnormally).  Detects
        and records deadlock as a side effect."""
        if self.error is not None or self.truncated:
            return True
        if not self._unfinished:
            return True
        if self._num_events >= self.max_events:
            self.truncated = True
            return True
        if not self.enabled():
            self.error = DeadlockError(self.runnable_unfinished())
            return True
        return False

    def finish(self) -> TraceResult:
        """Package the result; the run must be done."""
        if not self.is_done():
            raise SchedulerError("finish() called before the run is done")
        progress = tuple(
            (t.tindex, t.crashed) for t in self.threads
        )
        error = self.error or (
            self.guest_failures[0] if self.guest_failures else None
        )
        state_hash = compute_state_hash(
            self.instance.registry, progress, error, self.truncated
        )
        return TraceResult(
            program_name=self.program.name,
            schedule=list(self.schedule),
            events=list(self.trace),
            hbr_fp=self.engine.hbr_fingerprint(),
            lazy_fp=self.engine.lazy_fingerprint(),
            state_hash=state_hash,
            error=error,
            final_state=(
                {} if self.fast_replay
                else describe_state(self.instance.registry)
            ),
            truncated=self.truncated,
            event_count=self._num_events,
        )

    # ------------------------------------------------------------------
    # Invariant checking (tests only)
    def _recomputed_enabled(self) -> Set[int]:
        """Reference enabledness, recomputed from scratch — the tests
        cross-check the memoised/incremental sets against this."""
        self._admit_barriers()
        return {
            t.tid
            for t in self.threads
            if t.status == _Status.RUNNABLE
            and t.pending is not None
            and self._op_enabled(t)
        }
