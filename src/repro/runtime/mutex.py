"""Non-reentrant mutex.

``lock`` is enabled only while the mutex is free; ``unlock`` by a
non-owner is an :class:`~repro.errors.InvalidOpError` (a harness-level
modelling error, not a guest property violation).

Lock/unlock events are the operations whose inter-thread edges the lazy
happens-before relation discards.
"""

from __future__ import annotations

from typing import Optional

from ..core.events import OpKind
from ..errors import InvalidOpError
from .objects import ObjectRegistry, SharedObject


class Mutex(SharedObject):
    """A standard mutual-exclusion lock."""

    __slots__ = ("owner", "acquisitions")

    def __init__(self, registry: ObjectRegistry, name: str = ""):
        super().__init__(registry, name)
        self.owner: Optional[int] = None
        self.acquisitions = 0  # informational counter

    # -- protocol --------------------------------------------------------
    def op_enabled(self, op, tid, ex) -> bool:
        if op.kind is OpKind.LOCK:
            return self.owner is None
        return True  # UNLOCK: misuse surfaces in op_apply

    def op_apply(self, op, ex, thread):
        if op.kind is OpKind.LOCK:
            self.do_lock(thread.tid)
        else:
            self.do_unlock(thread.tid)
        return None

    def blocking_desc(self, op) -> str:
        return f"waiting to lock {self.name!r} (held by T{self.owner})"

    def op_timeout_result(self, op):
        # threading.Lock.acquire(timeout=...) contract
        return False

    def can_lock(self) -> bool:
        return self.owner is None

    def do_lock(self, tid: int) -> None:
        if self.owner is not None:
            raise InvalidOpError(
                f"{self.name}: lock by T{tid} while held by T{self.owner}"
            )
        self.owner = tid
        self.acquisitions += 1

    def do_unlock(self, tid: int) -> None:
        if self.owner != tid:
            raise InvalidOpError(
                f"{self.name}: unlock by T{tid} but owner is "
                f"{'nobody' if self.owner is None else f'T{self.owner}'}"
            )
        self.owner = None

    def state_value(self):
        # Mutex state participates in the final-state hash; the paper's
        # counting argument guarantees it is equal for schedules with
        # equal lazy HBRs.
        return ("mutex", self.owner)

    def snapshot_state(self):
        return (self.owner, self.acquisitions)

    def restore_state(self, state) -> None:
        self.owner, self.acquisitions = state
