"""Cyclic barrier.

A thread's ``barrier_wait`` is enabled once *all* ``parties`` threads
are simultaneously pending on the barrier (admission happens in a
deterministic pre-pass of the executor's enabledness computation).
Admitted threads then execute their BARRIER_WAIT events in any order
the scheduler picks — matching real barriers, where wakeup order after
the last arrival is unspecified.

No release edges are injected: all BARRIER_WAIT events on one barrier
conflict pairwise (they modify the barrier), and the synchronisation
"everyone reached the barrier" is an enabledness fact, not an event
ordering — see DESIGN.md §5.3.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from .objects import ObjectRegistry, SharedObject


def admit_full_cohorts(candidates: Iterable[Tuple[int, "Barrier"]]) -> None:
    """Admit every barrier whose new generation is fully assembled.

    ``candidates`` are ``(tid, barrier)`` pairs for runnable threads
    pending an unadmitted ``BARRIER_WAIT``, in deterministic (tid)
    order; the executor's enabledness pre-pass collects them.  Only
    threads of the *new* generation count — threads still in
    ``admitted`` are finishing the previous one.
    """
    pending_by_barrier: Dict[int, List[int]] = {}
    barriers: Dict[int, "Barrier"] = {}
    for tid, b in candidates:
        pending_by_barrier.setdefault(b.oid, []).append(tid)
        barriers[b.oid] = b
    for oid, tids in pending_by_barrier.items():
        b = barriers[oid]
        if len(tids) >= b.parties:
            b.admit(tids[: b.parties])


class Barrier(SharedObject):
    """A reusable barrier for a fixed number of parties."""

    __slots__ = ("parties", "admitted", "generation", "arrival")

    def __init__(self, registry: ObjectRegistry, parties: int, name: str = ""):
        super().__init__(registry, name)
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.parties = parties
        self.admitted: Set[int] = set()
        self.generation = 0
        # per-cohort arrival index (0..parties-1), assigned at admission
        # and handed back by ``do_pass`` — the stdlib ``Barrier.wait``
        # return value, delivered through the op so replay tapes carry it
        self.arrival: Dict[int, int] = {}

    # -- protocol --------------------------------------------------------
    def op_enabled(self, op, tid, ex) -> bool:
        return tid in self.admitted

    def op_apply(self, op, ex, thread):
        return self.do_pass(thread.tid)

    def blocking_desc(self, op) -> str:
        return (
            f"waiting at barrier {self.name!r} "
            f"({len(self.admitted)}/{self.parties} admitted)"
        )

    def admit(self, tids) -> None:
        """Called by the executor when ``parties`` threads are pending."""
        self.admitted.update(tids)
        for i, tid in enumerate(tids):
            self.arrival[tid] = i

    def can_pass(self, tid: int) -> bool:
        return tid in self.admitted

    def do_pass(self, tid: int) -> int:
        idx = self.arrival.pop(tid, 0)
        self.admitted.discard(tid)
        if not self.admitted:
            self.generation += 1
        return idx

    def state_value(self):
        return (
            "barrier", self.generation,
            tuple(sorted(self.admitted)),
            tuple(sorted(self.arrival.items())),
        )

    def snapshot_state(self):
        return (self.generation, frozenset(self.admitted),
                tuple(sorted(self.arrival.items())))

    def restore_state(self, state) -> None:
        self.generation, admitted, arrival = state
        self.admitted = set(admitted)
        self.arrival = dict(arrival)
