"""Cyclic barrier.

A thread's ``barrier_wait`` is enabled once *all* ``parties`` threads
are simultaneously pending on the barrier (admission happens in a
deterministic pre-pass of the executor's enabledness computation).
Admitted threads then execute their BARRIER_WAIT events in any order
the scheduler picks — matching real barriers, where wakeup order after
the last arrival is unspecified.

No release edges are injected: all BARRIER_WAIT events on one barrier
conflict pairwise (they modify the barrier), and the synchronisation
"everyone reached the barrier" is an enabledness fact, not an event
ordering — see DESIGN.md §5.3.
"""

from __future__ import annotations

from typing import Set

from .objects import ObjectRegistry, SharedObject


class Barrier(SharedObject):
    """A reusable barrier for a fixed number of parties."""

    __slots__ = ("parties", "admitted", "generation")

    def __init__(self, registry: ObjectRegistry, parties: int, name: str = ""):
        super().__init__(registry, name)
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.parties = parties
        self.admitted: Set[int] = set()
        self.generation = 0

    def admit(self, tids) -> None:
        """Called by the executor when ``parties`` threads are pending."""
        self.admitted.update(tids)

    def can_pass(self, tid: int) -> bool:
        return tid in self.admitted

    def do_pass(self, tid: int) -> int:
        self.admitted.discard(tid)
        if not self.admitted:
            self.generation += 1
        return self.generation

    def state_value(self):
        return ("barrier", self.generation, tuple(sorted(self.admitted)))

    def snapshot_state(self):
        return (self.generation, frozenset(self.admitted))

    def restore_state(self, state) -> None:
        self.generation, admitted = state
        self.admitted = set(admitted)
