"""Reader–writer lock.

Multiple readers may hold the lock concurrently; a writer requires
exclusivity.  Acquisition is greedy with no writer preference (a
pending writer does not block new readers) — the simplest deterministic
policy, and the one that exposes the most interleavings to the tester.

RWLock events are kept in the lazy HBR (conservatively: the paper's
theorem covers plain mutexes only).  An rwlock held in *read* mode by
several threads genuinely orders nothing between the readers, which the
regular HBR already captures because RLOCK conflicts are on the rwlock
object itself.
"""

from __future__ import annotations

from typing import Optional, Set

from ..core.events import OpKind
from ..errors import InvalidOpError
from .objects import ObjectRegistry, SharedObject


class RWLock(SharedObject):
    """A reader–writer lock."""

    __slots__ = ("readers", "writer")

    def __init__(self, registry: ObjectRegistry, name: str = ""):
        super().__init__(registry, name)
        self.readers: Set[int] = set()
        self.writer: Optional[int] = None

    # -- protocol --------------------------------------------------------
    def op_enabled(self, op, tid, ex) -> bool:
        kind = op.kind
        if kind is OpKind.RLOCK:
            return self.can_rlock(tid)
        if kind is OpKind.WLOCK:
            return self.can_wlock(tid)
        return True

    def op_apply(self, op, ex, thread):
        kind = op.kind
        tid = thread.tid
        if kind is OpKind.RLOCK:
            self.do_rlock(tid)
        elif kind is OpKind.RUNLOCK:
            self.do_runlock(tid)
        elif kind is OpKind.WLOCK:
            self.do_wlock(tid)
        else:  # WUNLOCK
            self.do_wunlock(tid)
        return None

    def blocking_desc(self, op) -> str:
        mode = "read" if op.kind is OpKind.RLOCK else "write"
        holders = (
            f"writer T{self.writer}" if self.writer is not None
            else f"readers {sorted(self.readers)}"
        )
        return f"waiting to {mode}-lock {self.name!r} (held by {holders})"

    # -- reader side -----------------------------------------------------
    def can_rlock(self, tid: int) -> bool:
        return self.writer is None and tid not in self.readers

    def do_rlock(self, tid: int) -> None:
        if self.writer is not None or tid in self.readers:
            raise InvalidOpError(f"{self.name}: bad rlock by T{tid}")
        self.readers.add(tid)

    def do_runlock(self, tid: int) -> None:
        if tid not in self.readers:
            raise InvalidOpError(f"{self.name}: runlock by non-reader T{tid}")
        self.readers.discard(tid)

    # -- writer side -----------------------------------------------------
    def can_wlock(self, tid: int) -> bool:
        return self.writer is None and not self.readers

    def do_wlock(self, tid: int) -> None:
        if self.writer is not None or self.readers:
            raise InvalidOpError(f"{self.name}: bad wlock by T{tid}")
        self.writer = tid

    def do_wunlock(self, tid: int) -> None:
        if self.writer != tid:
            raise InvalidOpError(f"{self.name}: wunlock by non-writer T{tid}")
        self.writer = None

    def state_value(self):
        return ("rwlock", tuple(sorted(self.readers)), self.writer)

    def snapshot_state(self):
        return (frozenset(self.readers), self.writer)

    def restore_state(self, state) -> None:
        readers, self.writer = state
        self.readers = set(readers)
