"""Op-stream memoisation: replay guests without re-running them.

Guest threads are *pure coroutines* — the invariant every replay
mechanism in this runtime already rests on (see
:mod:`repro.runtime.snapshot`): a guest body touches shared state only
through executed operations, so the sequence of ``Op`` values it
yields is fully determined by the sequence of values the executor has
``send()``-ed into it.  The snapshot machinery exploits this by
re-feeding recorded tapes into fresh generators; this module exploits
it harder: once a ``(thread, send-history)`` pair has been executed
once, the op it yields next is *known*, and replaying it again does
not need a generator at all.

The cache is a per-:class:`~repro.runtime.program.ProgramInstance`
**trie**: one root per static thread, one edge per distinct send
value, one node per ``(thread, send-history)`` prefix holding the op
the guest yielded on arriving there.  Replay walks edges with a dict
lookup per event instead of resuming a generator frame through guest
code; schedule divergence (the whole point of systematic exploration)
lands on an unexplored edge, at which point the executor *materialises*
the generator — rebuilds it and re-feeds the recorded history, exactly
a snapshot fast-forward — and resumes live execution, recording the
fresh edges as it goes.

Scoping rules that make this sound:

* The trie is owned by one ``ProgramInstance`` and caches that
  instance's ``Op`` objects verbatim (ops close over the instance's
  shared objects).  Instance reuse — the executor pool, snapshot
  restores with ``reuse=`` — is what makes the cache hit; a fresh
  instance starts a fresh trie.
* Ops are write-once (the one mutation, re-pointing a SLEEP at the
  instance clock, is idempotent per instance), so sharing one cached
  ``Op`` across replays is safe.
* Only *send values with value semantics* become edges
  (:func:`trie_key`): ints, strings, bools, floats, bytes, ``None``
  and tuples thereof.  Anything else — user objects flowing through
  channels, say — refuses to key, and the thread falls back to live
  generator execution for the rest of its run.
* Programs whose guests carry host-side Python state
  (``replay_finished_threads``: the shim frontend) never enable the
  cache: their side effects must actually re-execute.
* Runtime-injected exceptions (``fx_throw``) are not part of the send
  alphabet: a throw materialises the generator and permanently leaves
  the trie for that thread.

Set ``REPRO_OPCACHE=0`` to disable the cache process-wide; the
byte-identity suite runs the same explorations with the cache on and
off and asserts identical schedules, fingerprints and stats.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Sentinel for a send value the trie refuses to key on (no value
#: semantics); distinct from any real key.
UNKEYABLE = object()

#: Node layout: ``[op, children]`` where ``children`` is ``None``
#: until the first outgoing edge is recorded, then a dict mapping
#: :func:`trie_key` of the send value to the child node.  A node whose
#: op is a synthesized EXIT is terminal by construction (guests never
#: yield EXIT; it marks StopIteration or a guest crash).
Node = List[Any]


class OpTrie:
    """Per-instance op-stream cache (see module docstring).

    ``cap`` bounds total node count: beyond it, new edges simply stop
    being recorded (threads fall back to live generators), so a
    program with an enormous behaviour space degrades to exactly the
    pre-cache replay cost plus a dict miss.
    """

    __slots__ = ("roots", "nodes", "cap")

    def __init__(self, cap: int = 200_000) -> None:
        self.roots: Dict[int, Node] = {}  # static tid -> root node
        self.nodes = 0
        self.cap = cap


def trie_key(v: Any) -> Any:
    """The edge key for send value ``v``, or :data:`UNKEYABLE`.

    Keys preserve type distinctions that Python's cross-type equality
    would collapse (``1 == True == 1.0``): a guest branching on the
    *type* of a received value must not hit another type's edge.
    """
    tv = type(v)
    if tv is int or tv is str:
        return v
    if v is None:
        return v
    if tv is bool:
        return ("\x00b", v)
    if tv is float:
        return ("\x00f", v)
    if tv is bytes:
        return v
    if tv is tuple:
        out: List[Any] = ["\x00t"]
        for x in v:
            k = trie_key(x)
            if k is UNKEYABLE:
                return UNKEYABLE
            out.append(k)
        return tuple(out)
    return UNKEYABLE


__all__ = ["OpTrie", "trie_key", "UNKEYABLE", "Node"]
