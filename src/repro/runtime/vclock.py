"""Virtual time as a shared object.

Every :class:`~repro.runtime.program.ProgramInstance` carries exactly
one :class:`ClockObject`, registered after the program's own objects
(so user oids are unchanged by its existence).  All time events —
SLEEP, TIMER_TICK, and the TIME_FIRE events the executor synthesises
when a pending timeout fires — target this object, and its KindSpec
rows classify them as modifying in *both* happens-before relations.
That makes time events totally ordered along any execution, so the
virtual "now" is a deterministic function of the happens-before
fingerprint — exactly the property the fingerprint-caching explorers
and DPOR need to stay sound (DESIGN.md §12).

Time never advances from the wall clock: it jumps to a deadline only
when the scheduler executes a time event, which is what turns
*timeout-fires-vs-wakeup-wins* into an ordinary explorable scheduling
choice.
"""

from __future__ import annotations

from typing import Any

from ..clock import VirtualClock
from ..core.events import Op, OpKind
from .objects import ObjectRegistry, SharedObject

#: reserved name of the per-program clock object (never user-visible
#: through ``ProgramBuilder``, so it cannot collide)
CLOCK_NAME = "__clock__"


class ClockObject(SharedObject):
    """The per-program deterministic clock (integer microsecond ticks).

    SLEEP and TIMER_TICK ops target it directly; :meth:`op_apply`
    advances time by the op's duration, read *at execution time*.
    TIME_FIRE events likewise advance it by the armed timeout, via
    :meth:`advance_to` from the executor's timeout path.  Advances must
    be relative-at-execution: every clock value is then a function of
    the (totally ordered) clock-event subsequence alone, so commuting
    independent non-clock events never changes it — capturing an
    absolute deadline earlier (at pending-creation) would leak the
    interleaving into the state and break DPOR's equivalence classes.
    """

    __slots__ = ("clock",)

    def __init__(self, registry: ObjectRegistry) -> None:
        super().__init__(registry, CLOCK_NAME)
        self.clock = VirtualClock()

    @property
    def now(self) -> int:
        return self.clock.now_ticks

    def advance_to(self, deadline_ticks: int) -> int:
        return self.clock.advance_to(deadline_ticks)

    # -- the sync-primitive protocol ------------------------------------
    def op_enabled(self, op: Op, tid: int, ex: Any) -> bool:
        # a SLEEP/TIMER_TICK can fire at any scheduling point: virtual
        # time is allowed to jump straight to its deadline
        return True

    def op_apply(self, op: Op, ex: Any, thread: Any) -> Any:
        if op.kind is not OpKind.SLEEP and op.kind is not OpKind.TIMER_TICK:
            return SharedObject.op_apply(self, op, ex, thread)
        thread.deadline = None
        self.clock.advance_to(self.clock.now_ticks + (op.timeout or 0))
        return self.clock.now_ticks

    def blocking_desc(self, op: Op) -> str:  # pragma: no cover - diags
        return f"{op.kind.name} until t={op.timeout}"

    # -- state digests and snapshots ------------------------------------
    def state_value(self) -> Any:
        return ("clock", self.clock.now_ticks)

    def snapshot_state(self) -> Any:
        return self.clock.now_ticks

    def restore_state(self, state: Any) -> None:
        self.clock.now_ticks = state
