"""The specialized step loop for accelerated executors.

:func:`install_specialized_step` rebinds ``ex.step`` on a
``fast_replay`` executor to the fused fast-replay loop:

* the per-kind decisions the generic :meth:`Executor.step` makes with
  five separate table/identity tests per event (``IS_DATA``, core-vs-
  protocol dispatch, disturb-vs-patch, barrier/predicate counters,
  arrival sensitivity) are precompiled into **one packed flag word per
  kind** (:func:`kind_flags`, built once per process from the same
  ``KindSpec``-derived tables the generic loop reads, so a newly
  registered primitive is picked up automatically);
* the Event-materialising branch is gone entirely (``fast_replay``
  never takes it), so the loop runs straight into the engine's
  ``observe``.

Installation is one bound-method assignment (``MethodType``), cheap
enough for the snapshot-restore path — executors resumed from a prefix
snapshot often execute only a handful of divergent steps, so a
per-executor closure build would cost more than it saves.

Behaviour is identical to the generic loop by construction (the body is
the same straight-line logic minus the Event branch); the suite-wide
engine-equivalence tests hold it to byte-identical fingerprints,
schedules, state hashes and error outcomes.

The module deliberately imports nothing from :mod:`repro.runtime
.executor` at import time (the executor imports us); the one executor
internal needed (the status enum) is resolved lazily on first install.
"""

from __future__ import annotations

from bisect import insort
from types import MethodType

from ..core.events import (
    IS_ARRIVAL_SENSITIVE,
    IS_DATA,
    IS_DISTURBING,
    Op,
    OpKind,
)
from ..errors import DisabledThreadError, GuestError, SchedulerError

# Packed per-kind flag bits (kind_flags()[kind] & F_*):
F_DATA = 1        # location is (target.oid, element key)
F_NOLOC = 2       # YIELD/SPAWN/JOIN: no location at dispatch time
F_CORE = 4        # executor-core kind (not protocol-dispatched)
F_DISTURB = 8     # execution can change other threads' enabledness
F_ARRIVAL = 16    # pendingness can enable other threads
F_BARRIER = 32    # BARRIER_WAIT (cohort counter)
F_READ = 64       # READ (predicate-watch counter)
F_WRMW = 128      # WRITE/RMW (wakes await_value predicates)
F_SPAWN = 256
F_JOIN = 512
F_EXIT = 1024
F_LOCK = 2048

_FLAGS = None
_RUNNABLE = _WAITING = _FINISHED = None
_LOCK_KIND = OpKind.LOCK


def kind_flags():
    """kind -> packed flag word, derived once per process from the
    ``KindSpec``-registry tables the generic step loop indexes."""
    global _FLAGS
    if _FLAGS is None:
        core = (OpKind.SPAWN, OpKind.JOIN, OpKind.EXIT, OpKind.YIELD)
        flags = []
        for k in OpKind:
            f = 0
            if IS_DATA[k]:
                f |= F_DATA
            if k in (OpKind.YIELD, OpKind.SPAWN, OpKind.JOIN):
                f |= F_NOLOC
            if k in core:
                f |= F_CORE
            if IS_DISTURBING[k]:
                f |= F_DISTURB
            if IS_ARRIVAL_SENSITIVE[k]:
                f |= F_ARRIVAL
            if k is OpKind.BARRIER_WAIT:
                f |= F_BARRIER
            if k is OpKind.READ:
                f |= F_READ
            if k in (OpKind.WRITE, OpKind.RMW):
                f |= F_WRMW
            if k is OpKind.SPAWN:
                f |= F_SPAWN
            if k is OpKind.JOIN:
                f |= F_JOIN
            if k is OpKind.EXIT:
                f |= F_EXIT
            if k is OpKind.LOCK:
                f |= F_LOCK
            flags.append(f)
        _FLAGS = flags
    return _FLAGS


def _specialized_step(self, tid, trusted=False):
    """Fused fast-replay step (bound per executor by the installer).
    Mirrors :meth:`Executor.step` exactly, minus Event materialisation;
    returns None (fast_replay produces no events)."""
    if self.error is not None or self.truncated:
        raise SchedulerError("execution already terminated")
    threads = self.threads
    t = threads[tid]
    if t.status != _RUNNABLE or t.pending is None:
        if t.status == _WAITING and t.deadline is not None:
            # timed condvar waiter: stepping it fires its timeout
            # (delegates to the executor's shared fire path)
            return self._fire_parked_timeout(t)
        raise SchedulerError(f"thread {tid} has no pending operation")
    enabled_cache = self._enabled_cache
    if trusted:
        self._admit_barriers()
    elif enabled_cache is not None:
        if tid not in enabled_cache:
            raise DisabledThreadError(
                tid, enabled_cache, self._blocked_reason(t)
            )
    else:
        self._admit_barriers()
        if t.pending.timeout is None and not self._op_enabled(t):
            raise DisabledThreadError(
                tid, self.enabled(), self._blocked_reason(t)
            )
    if self._num_events >= self.max_events:
        self.truncated = True
        self._enabled_cache = None
        raise SchedulerError(
            f"schedule exceeded max_events={self.max_events}"
        )

    FLAGS = _FLAGS
    op = t.pending
    if op.timeout is not None and not self._op_enabled(t):
        # the base op cannot run: the timeout branch executes instead
        return self._fire_pending_timeout(t, op)
    kind = op.kind
    flags = FLAGS[kind]
    value = None
    released_mutex_oid = None
    woken = None
    spawned = None
    parked = False
    throw = None
    if flags & F_DATA:
        oid = op.target.oid
        key = op.arg
    elif flags & F_NOLOC:
        oid = -1
        key = None
    else:
        oid = op.target.oid
        key = None
    if flags & F_BARRIER:
        self._barrier_pending -= 1
    elif flags & F_READ and op.arg2 is not None:
        self._pred_watch -= 1
    if flags & F_DISTURB or (flags & F_WRMW and self._pred_watch):
        self._enabled_cache = None
        patch = False
    else:
        patch = self._enabled_cache is not None

    try:
        if not flags & F_CORE:
            value = op.target.op_apply(op, self, t)
        elif flags & F_SPAWN:
            fn, args = op.arg
            spawned = self._create_thread(fn, args, "")
            value = spawned.tid
            oid = spawned.handle.oid
            if self._record:
                self._spawn_origin[spawned.tid] = (tid, t.spawn_count)
                t.spawn_count += 1
        elif flags & F_JOIN:
            oid = threads[op.arg].handle.oid
        elif flags & F_EXIT:
            if op.arg is not None:
                t.crashed = True
                t.throw_exc = op.arg
                self.guest_failures.append(op.arg)
                value = op.arg
        # else YIELD: a pure scheduling point
    except GuestError as exc:  # pragma: no cover - defensive
        self.error = exc
        t.status = _FINISHED
        t.pending = None
        self._runnable.discard(tid)
        self._runnable_sorted = None
        self._unfinished -= 1
        self._enabled_cache = None
        raise
    if self._fx_any:
        self._fx_any = False
        released_mutex_oid, self._fx_released = self._fx_released, None
        parked, self._fx_parked = self._fx_parked, False
        throw, self._fx_throw = self._fx_throw, None
        if self._fx_woken is not None:
            woken = self._fx_woken
            self._fx_woken = None
    if t.deadline is not None:
        if parked:
            # timed condvar wait: deadline stays armed while parked
            self._timed_parked.add(tid)
        else:
            t.deadline = None  # the base operation won

    if spawned is None and not woken:
        # nobody consumes the published snapshots: the no-return
        # variant lets the compiled kernel skip materialising them
        self.engine.observe_fast(tid, kind, oid, key, released_mutex_oid)
    else:
        clock, lazy_clock = self.engine.observe(
            tid, kind, oid, key, released_mutex_oid
        )
    t.tindex += 1
    self._num_events += 1
    self.schedule.append(tid)

    if spawned is not None:
        self.engine.register_thread_clocks(spawned.tid, clock, lazy_clock)
    if woken:
        engine = self.engine
        runnable = self._runnable
        for wtid in woken:
            w = threads[wtid]
            engine.add_release_edge_clocks(clock, lazy_clock, wtid)
            w.status = _RUNNABLE
            w.resuming = True
            w.pending = Op(_LOCK_KIND, w.wait_mutex)
            if w.deadline is not None:
                # the notify beat this waiter's timeout
                self._timed_parked.discard(wtid)
                w.deadline = None
                w.parked_on = None
                w.wake_value = True
            runnable.add(wtid)
        self._runnable_sorted = None

    if parked:
        t.pending = None
    elif flags & F_EXIT:
        t.status = _FINISHED
        t.pending = None
        t.exit_recorded = True
        self._runnable.discard(tid)
        self._runnable_sorted = None
        self._unfinished -= 1
    elif t.resuming and flags & F_LOCK:
        t.resuming = False
        t.wait_mutex = None
        wake_value, t.wake_value = t.wake_value, None
        self._advance(t, wake_value)
    elif throw is not None:
        self._advance_throw(t, throw)
    else:
        self._advance(t, value)

    if patch:
        np = t.pending
        if np is not None and FLAGS[np.kind] & F_ARRIVAL:
            self._enabled_cache = None
        else:
            cache = self._enabled_cache
            now = np is not None and (
                np.timeout is not None or self._op_enabled(t)
            )
            if now != (tid in cache):
                cache = cache.copy()
                if now:
                    insort(cache, tid)
                else:
                    cache.remove(tid)
                self._enabled_cache = cache
    return None  # fast_replay materialises no events


def install_specialized_step(ex) -> None:
    """Rebind ``ex.step`` to the fused fast-replay loop.  Requires
    ``ex.fast_replay`` (no Event objects, no trace)."""
    global _RUNNABLE, _WAITING, _FINISHED
    if _RUNNABLE is None:
        from .executor import _Status  # deferred: the executor imports us

        _RUNNABLE = _Status.RUNNABLE
        _WAITING = _Status.WAITING
        _FINISHED = _Status.FINISHED
        kind_flags()
    ex.step = MethodType(_specialized_step, ex)
