"""Atomic integers.

``load``/``store`` are ordinary READ/WRITE events; ``fetch_add``,
``compare_and_swap`` and friends execute as single RMW events, so they
are indivisible at the scheduling level — exactly the semantics of
hardware atomics under sequential consistency.
"""

from __future__ import annotations

from .objects import DataObject, ObjectRegistry


class AtomicInt(DataObject):
    """A shared integer with atomic read-modify-write operations."""

    __slots__ = ("value",)

    def __init__(self, registry: ObjectRegistry, initial: int = 0, name: str = ""):
        super().__init__(registry, name)
        self.value = int(initial)

    def get(self, key=None) -> int:
        return self.value

    def set(self, key, value) -> None:
        self.value = int(value)

    def state_value(self):
        return self.value

    def snapshot_state(self):
        return self.value

    def restore_state(self, state) -> None:
        self.value = state

    # The RMW op carries a function old -> (new, result); these builders
    # produce the payloads used by ThreadAPI.
    @staticmethod
    def _fetch_add(delta: int):
        def apply(old: int):
            return old + delta, old
        return apply

    @staticmethod
    def _add_fetch(delta: int):
        def apply(old: int):
            return old + delta, old + delta
        return apply

    @staticmethod
    def _cas(expect: int, new: int):
        def apply(old: int):
            if old == expect:
                return new, True
            return old, False
        return apply

    @staticmethod
    def _exchange(new: int):
        def apply(old: int):
            return new, old
        return apply
