"""Schedulers and the one-shot ``execute`` helper.

A scheduler is anything with ``choose(executor) -> tid``; it is asked
for a decision at every scheduling point and must return one of the
currently enabled thread ids.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..errors import SchedulerError
from .executor import Executor
from .program import Program
from .trace import TraceResult


class FirstEnabledScheduler:
    """Always runs the lowest-numbered enabled thread (a deterministic
    default; corresponds to depth-first leftmost exploration)."""

    def choose(self, ex: Executor) -> int:
        return ex.enabled()[0]


class RoundRobinScheduler:
    """Cycles through threads, switching after every visible operation."""

    def __init__(self) -> None:
        self._last = -1

    def choose(self, ex: Executor) -> int:
        enabled = ex.enabled()
        for tid in enabled:
            if tid > self._last:
                self._last = tid
                return tid
        self._last = enabled[0]
        return enabled[0]


class RandomScheduler:
    """Uniform random choice among enabled threads (seeded)."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def choose(self, ex: Executor) -> int:
        enabled = ex.enabled()
        return enabled[self.rng.randrange(len(enabled))]


class ReplayScheduler:
    """Replays a fixed prefix of thread choices, then follows a fallback.

    Raises :class:`~repro.errors.SchedulerError` if the recorded choice
    is not enabled — i.e. the schedule is infeasible for this program.
    """

    def __init__(self, prefix: Sequence[int], fallback=None, strict: bool = False):
        self.prefix: List[int] = list(prefix)
        self.pos = 0
        self.fallback = fallback or FirstEnabledScheduler()
        self.strict = strict

    def choose(self, ex: Executor) -> int:
        if self.pos < len(self.prefix):
            tid = self.prefix[self.pos]
            self.pos += 1
            if tid not in ex.enabled():
                raise SchedulerError(
                    f"replay diverged at step {self.pos - 1}: thread {tid} "
                    f"not enabled (enabled={ex.enabled()})"
                )
            return tid
        if self.strict:
            raise SchedulerError("strict replay ran past the recorded schedule")
        return self.fallback.choose(ex)


def execute(
    program: Program,
    scheduler=None,
    schedule: Optional[Sequence[int]] = None,
    max_events: int = 20_000,
    canonical: bool = False,
) -> TraceResult:
    """Run ``program`` once to completion and return its trace.

    ``schedule`` (a list of thread ids) takes precedence over
    ``scheduler``; the remainder of the run after the recorded prefix is
    completed with the first-enabled policy.
    """
    if schedule is not None:
        scheduler = ReplayScheduler(schedule)
    elif scheduler is None:
        scheduler = FirstEnabledScheduler()
    ex = Executor(program, max_events=max_events, canonical=canonical)
    while not ex.is_done():
        ex.step(scheduler.choose(ex))
    return ex.finish()


def is_feasible(program: Program, schedule: Sequence[int], max_events: int = 20_000) -> bool:
    """Whether ``schedule`` (a complete list of thread choices) can be
    executed against ``program`` exactly as given."""
    ex = Executor(program, max_events=max_events)
    sched = ReplayScheduler(schedule, strict=True)
    try:
        while not ex.is_done():
            ex.step(sched.choose(ex))
    except SchedulerError:
        return False
    # feasible only if the whole prefix was consumed and the run is over
    return sched.pos == len(sched.prefix)
